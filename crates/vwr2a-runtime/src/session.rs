//! The [`Session`] runtime: load kernels once, relaunch them warm, stream
//! windows through the pipelined execution engine, evict cold programs
//! under configuration-memory pressure.
//!
//! # Pipelined streaming
//!
//! [`Session::run_stream`] (and [`Session::run_batch`] on top of it) does
//! not model windows as strictly sequential DMA-in → compute → DMA-out
//! round trips.  Instead, every invocation's costs are collected per
//! engine (see [`LaunchCtx`]) and replayed onto a double-buffered
//! [`crate::pipeline::StreamSchedule`]: window *i+1* stages while window
//! *i* computes, window *i−1* drains behind the launch, and the host
//! observes completions through the platform's interrupt lines.  Outputs
//! remain bit-identical to isolated runs; [`RunReport::wall_cycles`]
//! carries the overlapped latency.
//!
//! # Residency and eviction
//!
//! The configuration memory is finite.  A long-lived session serving many
//! distinct programs (e.g. FIR instances with different baked-in taps)
//! would eventually fill it; instead of failing with `ConfigMemoryFull`,
//! the session consults its [`EvictionPolicy`] (default: [`LruPolicy`]) and
//! unloads cold programs until the new one fits.  Programs the active
//! invocation depends on — the primary program and any auxiliary program
//! already touched through [`LaunchCtx::launch_aux`] — are *pinned* and
//! never evicted.  An evicted program is transparently rebuilt and reloaded
//! on its next use, and that launch is cold again (it pays the
//! configuration-word streaming); [`RunReport::evictions`] counts how often
//! the session had to make room.

use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use vwr2a_core::config_mem::KernelId;
use vwr2a_core::geometry::Geometry;
use vwr2a_core::program::KernelProgram;
use vwr2a_core::timeline::{Engine, Occupancy, Timeline};
use vwr2a_core::Vwr2a;

use crate::error::{Result, RuntimeError};
use crate::pipeline::{StreamSchedule, WindowPhases};
pub use crate::policy::{
    EvictionPolicy, LfuPolicy, LruPolicy, NeverEvict, ResidentProgram, SizeAwareLru,
};
use crate::report::RunReport;

/// Estimated cycles for one host SRF write over the slave port.
pub const SRF_WRITE_CYCLES: u64 = 2;

/// Estimated cycles for one host SRF read over the slave port.  Reads
/// traverse the same AMBA-AHB slave interface as writes, so they cost the
/// same — reduction kernels that collect a scalar result pay for it.
pub const SRF_READ_CYCLES: u64 = 2;

/// Static resource needs a kernel declares so a [`Session`] can reject it
/// before any staging happens, instead of failing mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Minimum array columns the kernel needs (kernels that adapt to the
    /// geometry declare their smallest workable configuration).
    pub columns: usize,
    /// SPM lines the kernel's data layout occupies.
    pub spm_lines: usize,
    /// SRF entries used for per-launch parameters (per column).
    pub srf_slots: usize,
}

/// A workload that runs on VWR2A through a [`Session`].
///
/// Implementations declare their configuration-memory program once
/// ([`Kernel::program`]) and drive staging, launches and read-back through
/// the [`LaunchCtx`] handed to [`Kernel::execute`].  Because the session
/// owns program residency, a kernel never decides cold-vs-warm itself:
/// [`LaunchCtx::launch`] streams configuration words only when the program
/// is not resident — its first use in the session, or its first use after
/// the session evicted it under capacity pressure — exactly like the real
/// hardware keeps a loaded kernel resident in the per-slot program
/// memories.
pub trait Kernel {
    /// Borrowed input type of one invocation (e.g. `[i32]` for a sample
    /// window, a struct of arrays for complex data).
    type Input: ?Sized;
    /// Owned output type of one invocation.
    type Output;

    /// Kernel name used in reports and error messages.
    fn name(&self) -> &str;

    /// Key identifying the configuration-memory program this kernel needs.
    ///
    /// Two kernel instances with equal keys share one loaded program (and
    /// therefore warm each other up).  Instances whose programs differ —
    /// e.g. FIR kernels with different baked-in taps — must produce
    /// different keys.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }

    /// Declared resource needs, validated against the session's geometry at
    /// registration.
    fn resources(&self) -> Resources;

    /// Builds the kernel's configuration-memory program for the given
    /// geometry.  Called once per [`Kernel::cache_key`] per residency: a
    /// program evicted under capacity pressure is rebuilt on its next use.
    fn program(&self, geometry: &Geometry) -> Result<KernelProgram>;

    /// Configuration-word footprint of the kernel's program on `geometry`
    /// — both the words a load occupies in the configuration memory and
    /// the cycles a cold reload streams (one word per cycle).
    ///
    /// The pool's cost-based placement weighs this reload cost against
    /// each candidate array's compute backlog before routing a job.  The
    /// default builds the program and counts its words; kernels that know
    /// their footprint without constructing the program may override.
    fn config_words(&self, geometry: &Geometry) -> Result<usize> {
        Ok(self.program(geometry)?.config_words())
    }

    /// Runs one invocation: stage inputs, launch (possibly repeatedly, e.g.
    /// once per FFT stage or per FIR block), collect outputs.
    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &Self::Input) -> Result<Self::Output>;

    /// Which non-CGRA backends could serve this kernel, and at what
    /// modelled cost (see [`crate::backend::Offload`]).  The default —
    /// CGRA-only — keeps every existing kernel's behaviour unchanged; a
    /// kernel that can also run on the fixed-function FFT engine or the
    /// Cortex-M4 host advertises it here, and the pool's placement then
    /// weighs those backends against the arrays.
    fn offload(&self) -> crate::backend::Offload {
        crate::backend::Offload::default()
    }

    /// Runs one invocation on the fixed-function FFT accelerator,
    /// returning the output and the accelerator's run statistics.
    ///
    /// Only called for kernels whose [`Kernel::offload`] declares an FFT
    /// shape; the default refuses with [`RuntimeError::Capability`].  An
    /// implementation must produce output **bit-identical** to running the
    /// same window on a fresh accelerator with the same configuration —
    /// the heterogeneous conformance tests hold it to that.
    fn execute_fft(
        &self,
        accel: &vwr2a_fftaccel::FftAccelerator,
        input: &Self::Input,
    ) -> Result<(Self::Output, vwr2a_fftaccel::FftAccelStats)> {
        let _ = (accel, input);
        Err(RuntimeError::Capability {
            kernel: self.name().to_string(),
            backend: "fft-accel".to_string(),
        })
    }

    /// Runs one invocation on the Cortex-M4 host CPU, returning the output
    /// and the instruction-set simulator's full run statistics (cycle
    /// count plus the per-event counts the energy model prices).
    ///
    /// Only called for kernels whose [`Kernel::offload`] declares a CPU
    /// cost; the default refuses with [`RuntimeError::Capability`].  An
    /// implementation must (re)load every input word it reads into `sram`
    /// itself — the host's SRAM persists across jobs, and outputs must be
    /// bit-identical regardless of what ran before.
    fn execute_cpu(
        &self,
        cpu: &mut vwr2a_soc::cpu::Cpu,
        sram: &mut vwr2a_soc::sram::Sram,
        input: &Self::Input,
    ) -> Result<(Self::Output, vwr2a_soc::cpu::CpuRunStats)> {
        let _ = (cpu, sram, input);
        Err(RuntimeError::Capability {
            kernel: self.name().to_string(),
            backend: "cpu".to_string(),
        })
    }
}

#[derive(Debug)]
struct Loaded {
    id: KernelId,
    launches: u64,
    last_use: u64,
    words: usize,
    /// `true` between a [`Session::prefetch`] and the program's next
    /// launch: the configuration words are already streamed (the launch
    /// will be warm), and the program is *soft-pinned* against eviction —
    /// evicting a speculatively staged program before the launch it was
    /// staged for would waste the hidden reload and silently turn the
    /// launch cold, so it only happens as a last resort, when no other
    /// resident can make room (a stale prefetch must not wedge the
    /// memory permanently).
    prefetched: bool,
}

/// Validates a built program's footprint (column count, program length,
/// SPM lines and SRF indices) against the geometry, reporting misfits as
/// [`RuntimeError::Resources`] instead of a mid-run simulator error.
fn validate_fit(geometry: &Geometry, program: &KernelProgram) -> Result<()> {
    program
        .validate(geometry)
        .map_err(|e| RuntimeError::Resources {
            kernel: program.name.to_string(),
            what: e.to_string(),
        })
}

/// Accounting of one [`Session::prefetch`] that actually streamed
/// configuration words.
///
/// The caller (typically a pool scheduling the prefetch onto an array's
/// [`StreamSchedule`]) replays `config_cycles` on the schedule's
/// configuration-load lane — where it overlaps the array's compute backlog
/// instead of sitting on the next launch's critical path — and folds the
/// counters into its report so work conservation holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prefetch {
    /// Cycles the configuration-word streaming occupied (one word per
    /// cycle — also the words loaded).
    pub config_cycles: u64,
    /// Residents evicted to make room for the prefetched program.
    pub evictions: u64,
    /// Accelerator activity of the prefetch (configuration words, cycles),
    /// for energy accounting.
    pub counters: vwr2a_core::ActivityCounters,
}

/// Split-borrow view of the session state the residency manager mutates
/// (constructible from both [`Session`] and [`LaunchCtx`], whose fields
/// are disjoint borrows of the same session).
struct Residency<'a> {
    accel: &'a mut Vwr2a,
    programs: &'a mut HashMap<String, Loaded>,
    policy: &'a dyn EvictionPolicy,
    clock: &'a mut u64,
    /// Keys a scheduler announced queued jobs will need (see
    /// [`Session::set_needed_soon`]): shielded from eviction while any
    /// other resident can make room.
    needed_soon: &'a HashSet<String>,
    /// Count of evictions the needed-soon shield redirected away from an
    /// announced key (see [`Session::evictions_averted`]).
    averted: &'a mut u64,
}

impl Residency<'_> {
    /// Loads `program` under `key`, evicting policy-chosen unpinned
    /// residents until it fits; each eviction is recorded in `evicted` as
    /// it happens, so the count survives even an error return.  Fails with
    /// `ConfigMemoryFull` — *before* unloading anything — when the
    /// evictable residents cannot free enough words (everything else is
    /// pinned, or the program exceeds the total capacity), so an
    /// impossible load never flushes the warm working set.  A policy that
    /// refuses or returns a key outside the candidate set (pinned or not
    /// resident) also fails the load instead of breaking the pin
    /// guarantee.
    ///
    /// A `speculative` load (prefetch staging) additionally refuses to
    /// fall past the shielded victim tier: sacrificing an already-staged
    /// or needed-soon program to stage another speculatively is strictly
    /// worse than letting the later job pay its own (authoritative)
    /// reload, so the stage fails — and its best-effort caller skips it —
    /// instead.
    fn load(
        &mut self,
        key: &str,
        program: &KernelProgram,
        pinned: &[String],
        speculative: bool,
        evicted: &mut u64,
    ) -> Result<()> {
        let needed = program.config_words();
        let full = |accel: &Vwr2a| vwr2a_core::CoreError::ConfigMemoryFull {
            capacity_words: accel.config_mem().capacity_words(),
            requested_words: needed,
        };
        // Programs pinned by the active invocation are never evictable.
        // Prefetched-but-not-yet-launched programs are *soft-pinned*:
        // withheld while any other resident can make room, offered only
        // as a last resort — a stale speculative staging must not wedge
        // the memory the way an invocation pin legitimately can (evicting
        // one merely wastes the staged words; its next use reloads cold).
        let unpinned = |key: &String| !pinned.iter().any(|p| p == key);
        let evictable: usize = self
            .programs
            .iter()
            .filter(|(key, _)| unpinned(key))
            .map(|(_, loaded)| loaded.words)
            .sum();
        if needed > self.accel.config_mem().free_words() + evictable {
            return Err(full(self.accel).into());
        }
        while needed > self.accel.config_mem().free_words() {
            let programs = &self.programs;
            let needed_soon = self.needed_soon;
            let snapshot =
                |include_needed: bool, include_prefetched: bool| -> Vec<ResidentProgram<'_>> {
                    programs
                        .iter()
                        .filter(|(key, loaded)| {
                            unpinned(key)
                                && (include_prefetched || !loaded.prefetched)
                                && (include_needed || !needed_soon.contains(*key))
                        })
                        .map(|(key, loaded)| ResidentProgram {
                            key,
                            words: loaded.words,
                            launches: loaded.launches,
                            last_use: loaded.last_use,
                        })
                        .collect()
                };
            // Victim tiers: first programs neither staged by a prefetch
            // nor announced as needed-soon, then needed-soon programs (a
            // planning hint, dropped before the prefetch soft pin — the
            // staged words are already paid for), then everything
            // unpinned.
            let shielded = snapshot(false, false);
            if speculative && shielded.is_empty() {
                return Err(full(self.accel).into());
            }
            let unshielded = snapshot(true, false);
            let used_shield = !shielded.is_empty() && shielded.len() < unshielded.len();
            let mut candidates = if shielded.is_empty() {
                unshielded.clone()
            } else {
                shielded
            };
            if candidates.is_empty() {
                candidates = snapshot(true, true);
            }
            let victim = match self.policy.select_victim(&candidates) {
                Some(victim) if candidates.iter().any(|c| c.key == victim) => victim.to_string(),
                // Refusal — or a rogue policy naming a pinned or
                // non-resident program, which must not break the pin
                // guarantee.
                _ => return Err(full(self.accel).into()),
            };
            if used_shield {
                // Count the shield's effect: without it the policy would
                // have victimised a program a queued job needs.
                if let Some(would) = self.policy.select_victim(&unshielded) {
                    if would != victim && needed_soon.contains(would) {
                        *self.averted += 1;
                    }
                }
            }
            let entry = self
                .programs
                .remove(&victim)
                .expect("victim validated against the candidate set");
            self.accel.unload_kernel(entry.id)?;
            self.policy.note_eviction(&victim, entry.launches);
            *evicted += 1;
        }
        let id = self.accel.load_kernel(program)?;
        self.policy.note_load(key);
        *self.clock += 1;
        self.programs.insert(
            key.to_string(),
            Loaded {
                id,
                launches: 0,
                last_use: *self.clock,
                words: needed,
                prefetched: false,
            },
        );
        Ok(())
    }
}

/// Execution context handed to [`Kernel::execute`]: a view of the session's
/// accelerator that accounts every host-visible cost (DMA cycles, SRF
/// reads and writes, launches) and routes launches through the session's
/// configuration-memory registry — evicting cold programs when an
/// auxiliary load needs room.
///
/// Costs are recorded on a per-invocation [`Timeline`]: DMA transfers and
/// launches report their spans through the core's timeline-aware APIs, so
/// the context knows not only the invocation's total cycles
/// ([`LaunchCtx::cycles`]) but also how those cycles split across the
/// platform engines (staging DMA, configuration streaming, array compute,
/// draining DMA).  The session's pipelined stream executor uses that split
/// to overlap consecutive windows.  Within one invocation everything is
/// serialised — an invocation observes its own effects in program order.
#[derive(Debug)]
pub struct LaunchCtx<'a> {
    accel: &'a mut Vwr2a,
    programs: &'a mut HashMap<String, Loaded>,
    policy: &'a dyn EvictionPolicy,
    clock: &'a mut u64,
    needed_soon: &'a HashSet<String>,
    averted: &'a mut u64,
    /// The invocation's primary program (the kernel's own cache key).
    primary_key: String,
    /// Programs this invocation depends on; never offered for eviction.
    pinned: Vec<String>,
    /// Serialised per-invocation timeline the core reports costs on.
    timeline: Timeline,
    /// Per-engine phase durations of the invocation.
    phases: WindowPhases,
    cold_launches: u64,
    warm_launches: u64,
    replayed: u64,
    evictions: u64,
}

impl LaunchCtx<'_> {
    /// The array geometry (for kernels whose layout depends on it).
    pub fn geometry(&self) -> Geometry {
        *self.accel.geometry()
    }

    /// Cycles accumulated so far in this invocation (all phases
    /// serialised).
    pub fn cycles(&self) -> u64 {
        self.timeline.wall_cycles()
    }

    /// DMAs `data` into the SPM at `spm_word_addr`, charging the transfer
    /// cycles to the invocation's staging phase.
    pub fn dma_in(&mut self, data: &[i32], spm_word_addr: usize) -> Result<()> {
        let now = self.timeline.wall_cycles();
        let span = self
            .accel
            .dma_to_spm_at(data, spm_word_addr, &mut self.timeline, now)?;
        self.phases.stage += span.duration();
        Ok(())
    }

    /// DMAs `len` words out of the SPM from `spm_word_addr`, charging the
    /// transfer cycles to the invocation's drain phase.
    pub fn dma_out(&mut self, spm_word_addr: usize, len: usize) -> Result<Vec<i32>> {
        let now = self.timeline.wall_cycles();
        let (data, span) =
            self.accel
                .dma_from_spm_at(spm_word_addr, len, &mut self.timeline, now)?;
        self.phases.drain += span.duration();
        Ok(data)
    }

    /// Charges `cycles` of host slave-port work to the compute phase (SRF
    /// accesses serialise with the launches they parameterise).
    fn charge_host(&mut self, cycles: u64) {
        let now = self.timeline.wall_cycles();
        self.timeline.schedule(Engine::Compute, now, cycles);
        self.phases.compute += cycles;
    }

    /// Writes one kernel parameter into a column's SRF over the slave port,
    /// charging [`SRF_WRITE_CYCLES`].
    pub fn write_param(&mut self, column: usize, index: usize, value: i32) -> Result<()> {
        self.accel.write_srf(column, index, value)?;
        self.charge_host(SRF_WRITE_CYCLES);
        Ok(())
    }

    /// Reads back one SRF entry (e.g. a scalar reduction result) over the
    /// slave port, charging [`SRF_READ_CYCLES`].
    pub fn read_param(&mut self, column: usize, index: usize) -> Result<i32> {
        let value = self.accel.read_srf(column, index)?;
        self.charge_host(SRF_READ_CYCLES);
        Ok(value)
    }

    /// Launches the kernel's primary program.
    ///
    /// A launch of a program that is resident in the configuration memory
    /// is *warm* and pays execution cycles only; a launch right after the
    /// session (re)loaded the program is *cold* and streams its
    /// configuration words first.  Returns the cycles of this launch.
    pub fn launch(&mut self) -> Result<u64> {
        let key = self.primary_key.clone();
        self.launch_key(&key)
    }

    /// Launches an auxiliary program, loading it (and caching it under
    /// `key`, session-wide) on first use.  Kernels with more than one
    /// program phase — e.g. the real-FFT recombination passes — use this so
    /// every phase gets the same load-once/warm-relaunch treatment as the
    /// primary program.
    ///
    /// The built program's footprint is validated against the geometry
    /// before it is loaded, so a misfit auxiliary program fails with
    /// [`RuntimeError::Resources`] instead of a mid-run simulator error.
    /// If the configuration memory is full, unpinned cold programs are
    /// evicted to make room; the auxiliary program itself is pinned for the
    /// rest of the invocation once touched.
    pub fn launch_aux(
        &mut self,
        key: &str,
        build: impl FnOnce() -> Result<KernelProgram>,
    ) -> Result<u64> {
        if !self.programs.contains_key(key) {
            let program = build()?;
            validate_fit(self.accel.geometry(), &program)?;
            Residency {
                accel: &mut *self.accel,
                programs: &mut *self.programs,
                policy: self.policy,
                clock: &mut *self.clock,
                needed_soon: self.needed_soon,
                averted: &mut *self.averted,
            }
            .load(key, &program, &self.pinned, false, &mut self.evictions)?;
        }
        if !self.pinned.iter().any(|p| p == key) {
            self.pinned.push(key.to_string());
        }
        self.launch_key(key)
    }

    fn launch_key(&mut self, key: &str) -> Result<u64> {
        *self.clock += 1;
        let now = *self.clock;
        let entry = self
            .programs
            .get_mut(key)
            .expect("program registered before launch");
        debug_assert!(
            self.accel.config_mem().contains(entry.id),
            "registry id must refer to a resident configuration-memory kernel"
        );
        let start = self.timeline.wall_cycles();
        let replays_before = self.accel.replays();
        // A never-launched program whose words were *prefetched* launches
        // warm: the configuration streaming already happened, off the
        // critical path.
        let (stats, spans) = if entry.launches == 0 && !entry.prefetched {
            self.cold_launches += 1;
            self.accel
                .run_kernel_at(entry.id, &mut self.timeline, start)?
        } else {
            self.warm_launches += 1;
            self.accel
                .run_kernel_warm_at(entry.id, &mut self.timeline, start)?
        };
        entry.launches += 1;
        self.replayed += self.accel.replays() - replays_before;
        // The launch the prefetch was staged for has happened: the program
        // competes for eviction normally again.
        entry.prefetched = false;
        entry.last_use = now;
        self.phases.config += spans.config.duration();
        self.phases.compute += spans.compute.duration();
        Ok(stats.cycles)
    }
}

/// Owns a [`Vwr2a`] instance and a registry of loaded kernels, making
/// configuration-memory reuse the default execution model.
///
/// The paper's headline host-side behaviour — "kernels are loaded once and
/// then re-invoked cheaply" — becomes unavoidable here: the first
/// [`Session::run`] of a kernel loads its program and launches cold; every
/// later run of the same kernel (or another instance with the same
/// [`Kernel::cache_key`]) launches warm, skipping the configuration-word
/// streaming entirely.  [`Session::run_batch`] and [`Session::run_stream`]
/// push whole input sequences through a loaded kernel and return one
/// aggregated [`RunReport`].
///
/// When the configuration memory cannot hold every distinct program the
/// session serves, cold programs are transparently evicted (see
/// [`EvictionPolicy`]; default [`LruPolicy`]) instead of failing — the
/// evicted program's next use is cold again, and
/// [`RunReport::evictions`] / [`Session::evictions`] make the capacity
/// pressure observable.
///
/// # Example
///
/// ```
/// use vwr2a_runtime::Session;
/// use vwr2a_runtime::testing::ScaleKernel;
///
/// # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
/// let mut session = Session::new();
/// let scale = ScaleKernel::new(2);
/// let window: Vec<i32> = (0..128).collect();
///
/// let (cold_out, cold) = session.run(&scale, &window)?;
/// let (warm_out, warm) = session.run(&scale, &window)?;
/// assert_eq!(cold_out, warm_out);
/// assert_eq!(cold.cold_launches, 1);
/// assert_eq!(warm.warm_launches, 1);
/// // The warm repeat skips the configuration-word streaming.
/// assert!(warm.cycles < cold.cycles);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    accel: Vwr2a,
    programs: HashMap<String, Loaded>,
    policy: Box<dyn EvictionPolicy>,
    clock: u64,
    evictions: u64,
    prefetches: u64,
    /// Cache keys a scheduler announced queued jobs will need soon (see
    /// [`Session::set_needed_soon`]).
    needed_soon: HashSet<String>,
    /// Evictions the needed-soon shield redirected onto another resident.
    evictions_averted: u64,
    /// Per-engine busy cycles accumulated over the session's lifetime
    /// (interrupt servicing is schedule-level and not included).
    busy: Occupancy,
}

impl Session {
    /// Creates a session around an accelerator with the paper's geometry
    /// and the default [`LruPolicy`].
    pub fn new() -> Self {
        Self::with_accelerator(Vwr2a::new())
    }

    /// Creates a session around a custom accelerator (ablation geometries,
    /// custom DMA timing) with the default [`LruPolicy`].
    pub fn with_accelerator(accel: Vwr2a) -> Self {
        Self::with_policy(accel, LruPolicy)
    }

    /// Creates a session with an explicit eviction policy.
    pub fn with_policy(accel: Vwr2a, policy: impl EvictionPolicy + 'static) -> Self {
        Self {
            accel,
            programs: HashMap::new(),
            policy: Box::new(policy),
            clock: 0,
            evictions: 0,
            prefetches: 0,
            needed_soon: HashSet::new(),
            evictions_averted: 0,
            busy: Occupancy::default(),
        }
    }

    /// Replaces the eviction policy (resident programs are unaffected).
    pub fn set_eviction_policy(&mut self, policy: impl EvictionPolicy + 'static) {
        self.policy = Box::new(policy);
    }

    /// Enables or disables the accelerator's warm-window replay cache
    /// (see [`vwr2a_core::replay`]).  On by default; disabling forces every
    /// launch through cycle-by-cycle interpretation.  A host-speed knob
    /// only — modelled cycles, counters and outputs are identical either
    /// way, which is exactly what the conformance property tests assert.
    pub fn set_replay(&mut self, enabled: bool) {
        self.accel.set_replay_enabled(enabled);
    }

    /// Whether the warm-window replay cache is enabled.
    pub fn replay_enabled(&self) -> bool {
        self.accel.replay_enabled()
    }

    /// The underlying accelerator.
    pub fn accelerator(&self) -> &Vwr2a {
        &self.accel
    }

    /// Mutable access to the underlying accelerator (tests, manual staging).
    pub fn accelerator_mut(&mut self) -> &mut Vwr2a {
        &mut self.accel
    }

    /// Number of distinct programs resident in the configuration memory.
    pub fn loaded_programs(&self) -> usize {
        self.programs.len()
    }

    /// Total programs evicted from the configuration memory over the
    /// session's lifetime to make room for new loads.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total [`Session::prefetch`] calls that actually streamed
    /// configuration words over the session's lifetime.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Announces the cache keys queued work will need soon, replacing any
    /// previous announcement (an empty iterator clears it).
    ///
    /// While announced, a key's resident program is **shielded** from
    /// eviction as long as any other resident can make room: a prefetch or
    /// cold load then victimises a program no queued job needs, instead of
    /// one the scheduler is about to launch.  The shield is a planning
    /// hint, not a pin — when only needed-soon programs could free enough
    /// words, they are offered for eviction after all (before the
    /// [`Session::prefetch`] soft pin falls), so an over-announced set can
    /// never wedge the configuration memory.  Outputs are unaffected
    /// either way; only *which* program pays the next cold reload moves.
    ///
    /// The serving layer's lookahead planner derives this set from its
    /// admission and run queues each scheduling round.
    pub fn set_needed_soon(&mut self, keys: impl IntoIterator<Item = String>) {
        self.needed_soon.clear();
        self.needed_soon.extend(keys);
    }

    /// Evictions the needed-soon shield redirected over the session's
    /// lifetime: times an eviction would have victimised an announced key
    /// but took another resident instead.
    pub fn evictions_averted(&self) -> u64 {
        self.evictions_averted
    }

    /// `true` if the kernel's next launch will be warm: its program is
    /// resident and has either launched before or been staged by
    /// [`Session::prefetch`].  A kernel that was evicted under capacity
    /// pressure reports `false` until it is reloaded and launched (or
    /// prefetched) again.
    pub fn is_warm<K: Kernel>(&self, kernel: &K) -> bool {
        self.programs
            .get(&kernel.cache_key())
            .is_some_and(|p| p.launches > 0 || p.prefetched)
    }

    /// `true` if the kernel's program is resident in the configuration
    /// memory (loaded, whether or not it has launched yet).  This is the
    /// residency query behind the pool's [`crate::pool::ResidencyAware`]
    /// placement: an array with the program resident serves the next
    /// launch without re-streaming configuration words.
    pub fn is_resident<K: Kernel>(&self, kernel: &K) -> bool {
        self.is_resident_key(&kernel.cache_key())
    }

    /// [`Session::is_resident`] by raw [`Kernel::cache_key`], for callers
    /// that track programs by key (the pool's placement strategies).
    pub fn is_resident_key(&self, key: &str) -> bool {
        self.programs.contains_key(key)
    }

    /// [`Session::is_warm`] by raw [`Kernel::cache_key`], for callers that
    /// track programs by key (the pool's backend views).
    pub fn is_warm_key(&self, key: &str) -> bool {
        self.programs
            .get(key)
            .is_some_and(|p| p.launches > 0 || p.prefetched)
    }

    /// Per-engine busy cycles accumulated over every invocation of the
    /// session's lifetime (configuration streaming, DMA staging and
    /// draining, array compute; schedule-level interrupt servicing is not
    /// included).
    pub fn busy(&self) -> Occupancy {
        self.busy
    }

    /// The cycle at which the session's compute engine would free if its
    /// lifetime of array work ran back-to-back from cycle 0 — shorthand
    /// for [`Session::busy`]`().compute`, the cumulative compute-busy
    /// cycles.  This is a *load metric* (used by the pool's
    /// [`crate::pool::LeastLoaded`] placement), not a schedule time: for
    /// the busy-until cycle of an actual overlapped schedule, ask its
    /// [`crate::pipeline::StreamSchedule::free_at`].
    pub fn free_compute_at(&self) -> u64 {
        self.busy.compute
    }

    /// Registers a kernel without running it: validates its resource needs
    /// and loads its program into the configuration memory, evicting cold
    /// programs if it does not fit.  [`Session::run`] does this implicitly;
    /// pre-registering is useful to front-load validation errors.
    pub fn register<K: Kernel>(&mut self, kernel: &K) -> Result<()> {
        self.register_internal(kernel).map(|_| ())
    }

    /// Speculatively stages a kernel so its next launch is warm: loads the
    /// program if absent (evicting cold residents as [`Session::register`]
    /// would) and streams its configuration words into the per-slot program
    /// memories ahead of the launch — the cold half of a launch, paid while
    /// the array is busy with something else.
    ///
    /// Returns `Ok(None)` when there is nothing to stage (the program is
    /// already warm, or already prefetched and awaiting its launch);
    /// otherwise `Ok(Some(_))` with the [`Prefetch`] accounting.  Until it
    /// launches (or is explicitly [`Session::unload`]ed) a prefetched
    /// program is **soft-pinned against eviction**: evicting it would
    /// waste the hidden reload and silently turn its launch cold again, so
    /// the session only offers it as a victim when no other resident can
    /// make room — a stale prefetch degrades back to a cold reload instead
    /// of wedging the configuration memory.  The launch itself then counts
    /// as warm — the reload happened, but off the launch's critical path.
    ///
    /// # Errors
    ///
    /// As [`Session::register`] (resource misfits, `ConfigMemoryFull` when
    /// eviction cannot make room).  The staging load is *speculative*:
    /// it also fails with `ConfigMemoryFull` — instead of evicting — when
    /// only prefetched or needed-soon residents (see
    /// [`Session::set_needed_soon`]) could free enough words, so a
    /// best-effort prefetch never cannibalises a program another staged
    /// or queued launch depends on.
    pub fn prefetch<K: Kernel>(&mut self, kernel: &K) -> Result<Option<Prefetch>> {
        let evictions = self.register_internal_with(kernel, true)?;
        let entry = self
            .programs
            .get_mut(&kernel.cache_key())
            .expect("program registered by prefetch");
        if entry.launches > 0 || entry.prefetched {
            return Ok(None);
        }
        let before = self.accel.counters();
        let mut scratch = Timeline::new();
        let span = self.accel.prefetch_kernel_at(entry.id, &mut scratch, 0)?;
        entry.prefetched = true;
        self.clock += 1;
        entry.last_use = self.clock;
        self.prefetches += 1;
        self.busy.config_load += span.duration();
        Ok(Some(Prefetch {
            config_cycles: span.duration(),
            evictions,
            counters: self.accel.counters() - before,
        }))
    }

    /// Explicitly unloads a kernel's program from the configuration memory,
    /// reclaiming its words.  Returns `true` if the program was resident.
    /// Its next use is rebuilt, reloaded and launched cold — exactly like a
    /// policy eviction, but not counted in [`Session::evictions`].
    pub fn unload<K: Kernel>(&mut self, kernel: &K) -> Result<bool> {
        match self.programs.remove(&kernel.cache_key()) {
            Some(entry) => {
                self.accel.unload_kernel(entry.id)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Loads the kernel's program if absent, returning how many residents
    /// were evicted to make room.  Evictions are added to
    /// [`Session::evictions`] as they happen, even if the load then fails.
    fn register_internal<K: Kernel>(&mut self, kernel: &K) -> Result<u64> {
        self.register_internal_with(kernel, false)
    }

    /// [`Session::register_internal`] with an explicit speculative flag:
    /// a speculative load (prefetch staging) gives up instead of evicting
    /// a prefetched or needed-soon resident.
    fn register_internal_with<K: Kernel>(&mut self, kernel: &K, speculative: bool) -> Result<u64> {
        let key = kernel.cache_key();
        if self.programs.contains_key(&key) {
            // An invocation (or prefetch) came back for a resident program:
            // the once-per-invocation reuse signal adaptive policies
            // promote on.  Raw launch counts cannot stand in for this —
            // one FIR invocation issues two launches.
            self.policy.note_use(&key);
            return Ok(0);
        }
        let geometry = *self.accel.geometry();
        let needs = kernel.resources();
        let check = |what: String| RuntimeError::Resources {
            kernel: kernel.name().to_string(),
            what,
        };
        if needs.columns > geometry.columns {
            return Err(check(format!(
                "needs {} columns, array has {}",
                needs.columns, geometry.columns
            )));
        }
        if needs.spm_lines > geometry.spm_lines() {
            return Err(check(format!(
                "needs {} SPM lines, array has {}",
                needs.spm_lines,
                geometry.spm_lines()
            )));
        }
        if needs.srf_slots > geometry.srf_entries {
            return Err(check(format!(
                "needs {} SRF slots, array has {}",
                needs.srf_slots, geometry.srf_entries
            )));
        }
        let program = kernel.program(&geometry)?;
        validate_fit(&geometry, &program)?;
        let mut evicted = 0;
        let result = Residency {
            accel: &mut self.accel,
            programs: &mut self.programs,
            policy: &*self.policy,
            clock: &mut self.clock,
            needed_soon: &self.needed_soon,
            averted: &mut self.evictions_averted,
        }
        .load(&key, &program, &[], speculative, &mut evicted);
        self.evictions += evicted;
        result.map(|()| evicted)
    }

    /// Runs one invocation of `kernel` over `input`.
    ///
    /// The first run of a kernel in the session launches cold (its program
    /// is loaded and its configuration words streamed); repeats launch
    /// warm, unless the program was evicted in between — then the next run
    /// is cold again.  Returns the kernel's output and the invocation's
    /// report.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Resources`] if the kernel does not fit the
    /// array, [`RuntimeError::InvalidInput`] if the kernel rejects the
    /// input, or any simulator error.
    pub fn run<K: Kernel>(
        &mut self,
        kernel: &K,
        input: &K::Input,
    ) -> Result<(K::Output, RunReport)> {
        let mut report = RunReport::new(kernel.name());
        let mut schedule = StreamSchedule::new();
        let (output, phases) = self.run_into(kernel, input, &mut report)?;
        schedule.push(phases);
        let timeline = schedule.finish();
        report.wall_cycles = timeline.wall_cycles();
        report.busy = timeline.occupancy();
        Ok((output, report))
    }

    /// Runs `kernel` over every input of a batch without re-staging its
    /// program: the first window may launch cold, all later windows launch
    /// warm.  Outputs are returned in input order together with one
    /// aggregated report; like [`Session::run_stream`], the report's
    /// [`RunReport::wall_cycles`] reflects the pipelined (overlapped)
    /// schedule while outputs stay bit-identical to per-window runs.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the batch.
    pub fn run_batch<K, I>(&mut self, kernel: &K, inputs: I) -> Result<(Vec<K::Output>, RunReport)>
    where
        K: Kernel,
        I: IntoIterator,
        I::Item: Borrow<K::Input>,
    {
        let inputs = inputs.into_iter();
        let mut outputs = Vec::with_capacity(inputs.size_hint().0);
        let report = self.run_stream(kernel, inputs, |out| {
            outputs.push(out);
            Ok(())
        })?;
        Ok((outputs, report))
    }

    /// Streams inputs through `kernel` on the pipelined execution engine,
    /// handing each output to `sink` as soon as it is ready (constant
    /// memory in the number of windows).
    ///
    /// Outputs are computed in input order and are bit-identical to
    /// [`Session::run_batch`] and to isolated [`Session::run`] calls; what
    /// pipelining changes is the *timing model*: the SPM is treated as
    /// double-buffered, so window *i+1*'s DMA staging overlaps window
    /// *i*'s array execution, window *i−1*'s results drain behind the
    /// launch, and each completion reaches the host through the VWR2A
    /// completion interrupt (see [`crate::pipeline`]).  The returned
    /// report's [`RunReport::wall_cycles`] is the overlapped end-to-end
    /// latency — strictly below [`RunReport::serial_cycles`] whenever more
    /// than one window allowed any overlap — while [`RunReport::cycles`]
    /// keeps the serial phase sum of the pre-pipelining model.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error — including an error returned
    /// by `sink` — aborts the stream.  The session itself remains valid
    /// and reusable: programs loaded so far stay resident and later runs
    /// launch warm.
    pub fn run_stream<K, I, F>(&mut self, kernel: &K, inputs: I, mut sink: F) -> Result<RunReport>
    where
        K: Kernel,
        I: IntoIterator,
        I::Item: Borrow<K::Input>,
        F: FnMut(K::Output) -> Result<()>,
    {
        let mut report = RunReport::new(kernel.name());
        let mut schedule = StreamSchedule::new();
        for input in inputs {
            let (output, phases) = self.run_into(kernel, input.borrow(), &mut report)?;
            schedule.push(phases);
            sink(output)?;
        }
        let timeline = schedule.finish();
        report.wall_cycles = timeline.wall_cycles();
        report.busy = timeline.occupancy();
        Ok(report)
    }

    /// Runs one invocation, folding its counts into `report` (except the
    /// schedule-dependent `wall_cycles`/`busy`, which the caller derives
    /// from the returned [`WindowPhases`]).  Shared by the session's own
    /// stream executor and the pool's fan-out, which replays the phases on
    /// per-array schedules.
    pub(crate) fn run_into<K: Kernel>(
        &mut self,
        kernel: &K,
        input: &K::Input,
        report: &mut RunReport,
    ) -> Result<(K::Output, WindowPhases)> {
        let register_evictions = self.register_internal(kernel)?;
        let before = self.accel.counters();
        let mut ctx = LaunchCtx {
            accel: &mut self.accel,
            programs: &mut self.programs,
            policy: &*self.policy,
            clock: &mut self.clock,
            needed_soon: &self.needed_soon,
            averted: &mut self.evictions_averted,
            primary_key: kernel.cache_key(),
            pinned: vec![kernel.cache_key()],
            timeline: Timeline::new(),
            phases: WindowPhases::default(),
            cold_launches: 0,
            warm_launches: 0,
            replayed: 0,
            evictions: 0,
        };
        let result = kernel.execute(&mut ctx, input);
        let ctx_evictions = ctx.evictions;
        let replayed = ctx.replayed;
        let (cold, warm, phases) = (ctx.cold_launches, ctx.warm_launches, ctx.phases);
        let cycles = ctx.timeline.wall_cycles();
        self.evictions += ctx_evictions;
        // Like the eviction count, the lifetime busy cycles cover work the
        // accelerator model performed even when the invocation then fails.
        self.busy.config_load += phases.config;
        self.busy.dma += phases.stage + phases.drain;
        self.busy.compute += phases.compute;
        let output = result?;
        report.invocations += 1;
        report.cold_launches += cold;
        report.warm_launches += warm;
        report.replayed += replayed;
        report.cycles += cycles;
        report.evictions += register_evictions + ctx_evictions;
        let delta = self.accel.counters() - before;
        // Price the invocation's own activity delta (not the running
        // total): per-window nJ then sum *exactly* to per-backend and
        // fleet totals, which the routing reports rely on.
        report.energy_nj += vwr2a_energy::EnergyModel::calibrated().price_array(&delta);
        report.counters += delta;
        Ok((output, phases))
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{BakedScaleKernel, ScaleKernel};
    use vwr2a_core::program::{ColumnProgram, Row};
    use vwr2a_core::CoreError;

    /// A session whose configuration memory holds `config_words` words.
    fn constrained_session(config_words: usize) -> Session {
        let mut geometry = Geometry::paper();
        geometry.config_words = config_words;
        Session::with_accelerator(Vwr2a::with_geometry(geometry).unwrap())
    }

    /// Configuration words of one BakedScaleKernel program on the paper
    /// geometry.
    fn baked_words() -> usize {
        BakedScaleKernel::new(1)
            .program(&Geometry::paper())
            .unwrap()
            .config_words()
    }

    #[test]
    fn full_config_memory_evicts_lru_instead_of_failing() {
        // Room for exactly two baked programs.
        let mut session = constrained_session(2 * baked_words());
        let k2 = BakedScaleKernel::new(2);
        let k3 = BakedScaleKernel::new(3);
        let k5 = BakedScaleKernel::new(5);
        let input: Vec<i32> = (0..100).collect();

        let (out2, r2) = session.run(&k2, &input).unwrap();
        let (out3, r3) = session.run(&k3, &input).unwrap();
        assert_eq!(r2.evictions + r3.evictions, 0);
        assert_eq!(session.loaded_programs(), 2);

        // The third distinct program evicts the least recently used (k2).
        let (out5, r5) = session.run(&k5, &input).unwrap();
        assert_eq!(r5.evictions, 1);
        assert_eq!(r5.cold_launches, 1);
        assert_eq!(session.loaded_programs(), 2);
        assert_eq!(session.evictions(), 1);
        assert!(!session.is_warm(&k2), "k2 must have been evicted");
        assert!(session.is_warm(&k3));

        // Outputs stay correct throughout — no stale program aliasing.
        assert_eq!(out2, input.iter().map(|v| v * 2).collect::<Vec<_>>());
        assert_eq!(out3, input.iter().map(|v| v * 3).collect::<Vec<_>>());
        assert_eq!(out5, input.iter().map(|v| v * 5).collect::<Vec<_>>());

        // Re-running the evicted kernel reloads it (cold again), evicting
        // the new LRU (k3), and still multiplies by 2 — not by a stale
        // program's factor.
        let (out2b, r2b) = session.run(&k2, &input).unwrap();
        assert_eq!(r2b.evictions, 1);
        assert_eq!(r2b.cold_launches, 1);
        assert_eq!(r2b.warm_launches, 0);
        assert!(r2b.counters.config_words_loaded > 0, "reload streams words");
        assert_eq!(out2b, out2);
        assert!(!session.is_warm(&k3));
        assert!(session.is_warm(&k5));
    }

    #[test]
    fn never_evict_policy_keeps_the_hard_failure() {
        let mut geometry = Geometry::paper();
        geometry.config_words = 2 * baked_words();
        let accel = Vwr2a::with_geometry(geometry).unwrap();
        let mut session = Session::with_policy(accel, NeverEvict);
        let input = [1i32, 2, 3];
        session.run(&BakedScaleKernel::new(2), &input[..]).unwrap();
        session.run(&BakedScaleKernel::new(3), &input[..]).unwrap();
        let err = session
            .run(&BakedScaleKernel::new(5), &input[..])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
        assert_eq!(session.evictions(), 0);
    }

    #[test]
    fn oversized_program_fails_even_after_evicting_everything() {
        // The program alone exceeds the whole capacity: eviction cannot
        // help, and the session must say so instead of looping.
        let mut session = constrained_session(baked_words() - 1);
        let err = session
            .run(&BakedScaleKernel::new(2), &[1i32, 2][..])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
    }

    #[test]
    fn impossible_load_does_not_flush_the_warm_working_set() {
        // Two warm residents, then a program that exceeds the whole
        // capacity: the load must fail up front without evicting anything.
        struct Giant;
        impl Kernel for Giant {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "giant"
            }
            fn resources(&self) -> Resources {
                Resources::default()
            }
            fn program(&self, g: &Geometry) -> Result<KernelProgram> {
                let mut rows = vec![Row::new(g.rcs_per_column); 50];
                rows.push(Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit));
                let col = ColumnProgram::new(rows)?;
                Ok(KernelProgram::new("giant", vec![col.clone(), col])?)
            }
            fn execute(&self, _ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<()> {
                unreachable!("never loads")
            }
        }
        let mut session = constrained_session(2 * baked_words());
        let k2 = BakedScaleKernel::new(2);
        let k3 = BakedScaleKernel::new(3);
        let input = [1i32, 2, 3];
        session.run(&k2, &input[..]).unwrap();
        session.run(&k3, &input[..]).unwrap();

        let err = session.run(&Giant, &()).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
        assert!(session.is_warm(&k2), "k2 must survive the impossible load");
        assert!(session.is_warm(&k3), "k3 must survive the impossible load");
        assert_eq!(session.evictions(), 0);
    }

    #[test]
    fn rogue_policy_cannot_evict_outside_the_candidate_set() {
        // A policy that names a program that is not an eviction candidate
        // (here: not resident at all) must fail the load cleanly instead of
        // panicking or breaking the pin guarantee.
        #[derive(Debug)]
        struct Rogue;
        impl EvictionPolicy for Rogue {
            fn select_victim<'a>(&self, _c: &[ResidentProgram<'a>]) -> Option<&'a str> {
                Some("not-a-resident")
            }
        }
        let mut geometry = Geometry::paper();
        geometry.config_words = 2 * baked_words();
        let accel = Vwr2a::with_geometry(geometry).unwrap();
        let mut session = Session::with_policy(accel, Rogue);
        let input = [1i32, 2];
        let k2 = BakedScaleKernel::new(2);
        let k3 = BakedScaleKernel::new(3);
        session.run(&k2, &input[..]).unwrap();
        session.run(&k3, &input[..]).unwrap();
        let err = session
            .run(&BakedScaleKernel::new(5), &input[..])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
        assert!(session.is_warm(&k2));
        assert!(session.is_warm(&k3));
        assert_eq!(session.evictions(), 0);
    }

    #[test]
    fn mixed_workload_under_pressure_is_bit_identical_to_unconstrained() {
        // The acceptance scenario: a config memory holding only 2 of 4
        // distinct kernels serves a 100-invocation mixed workload with
        // bit-identical outputs, evictions instead of errors, and cold
        // launches only where an eviction preceded them.
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5, 7]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let mut constrained = constrained_session(2 * baked_words());
        let mut unconstrained = Session::new();

        let mut cold_total = 0u64;
        let mut evictions_total = 0u64;
        for i in 0..100 {
            let kernel = &kernels[i % kernels.len()];
            let input: Vec<i32> = (0..64).map(|v| v + i as i32).collect();
            let (out_c, report) = constrained.run(kernel, &input).unwrap();
            let (out_u, _) = unconstrained.run(kernel, &input).unwrap();
            assert_eq!(out_c, out_u, "invocation {i} diverged under pressure");
            if i >= kernels.len() {
                // Not a first-ever load: a cold launch is only legitimate
                // when evictions made room at its expense earlier.
                assert!(
                    report.cold_launches == 0 || evictions_total > 0,
                    "invocation {i} went cold without any prior eviction"
                );
            }
            cold_total += report.cold_launches;
            evictions_total += report.evictions;
        }
        assert!(evictions_total > 0, "the workload must overflow the memory");
        assert!(
            cold_total > kernels.len() as u64,
            "evictions must cause cold reloads"
        );
        // Every cold launch beyond the four initial loads is paid for by an
        // eviction.
        assert!(cold_total <= kernels.len() as u64 + evictions_total);
        assert_eq!(constrained.evictions(), evictions_total);
        assert_eq!(unconstrained.evictions(), 0);
    }

    #[test]
    fn srf_reads_are_charged_like_writes() {
        struct ParamEcho;
        impl Kernel for ParamEcho {
            type Input = ();
            type Output = i32;
            fn name(&self) -> &str {
                "param-echo"
            }
            fn resources(&self) -> Resources {
                Resources::default()
            }
            fn program(&self, g: &Geometry) -> Result<KernelProgram> {
                let col = ColumnProgram::new(vec![
                    Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit)
                ])?;
                Ok(KernelProgram::new("param-echo", vec![col])?)
            }
            fn execute(&self, ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<i32> {
                ctx.write_param(0, 0, 42)?;
                let a = ctx.read_param(0, 0)?;
                let b = ctx.read_param(0, 0)?;
                let c = ctx.read_param(0, 0)?;
                Ok(a + b + c)
            }
        }
        let mut session = Session::new();
        let (sum, report) = session.run(&ParamEcho, &()).unwrap();
        assert_eq!(sum, 126);
        // One write and three reads over the slave port — reads are no
        // longer free.
        assert_eq!(report.cycles, SRF_WRITE_CYCLES + 3 * SRF_READ_CYCLES);
    }

    #[test]
    fn misfit_aux_program_fails_with_resources() {
        struct WideAux;
        impl Kernel for WideAux {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "wide-aux"
            }
            fn resources(&self) -> Resources {
                Resources::default()
            }
            fn program(&self, g: &Geometry) -> Result<KernelProgram> {
                let col = ColumnProgram::new(vec![
                    Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit)
                ])?;
                Ok(KernelProgram::new("wide-aux", vec![col])?)
            }
            fn execute(&self, ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<()> {
                // Three columns on a two-column array: must fail before any
                // load, as a Resources error.
                ctx.launch_aux("wide-aux:3col", || {
                    let col =
                        ColumnProgram::new(vec![Row::new(4).lcu(vwr2a_core::isa::LcuInstr::Exit)])?;
                    Ok(KernelProgram::new(
                        "wide-aux:3col",
                        vec![col.clone(), col.clone(), col],
                    )?)
                })?;
                Ok(())
            }
        }
        let mut session = Session::new();
        let err = session.run(&WideAux, &()).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Resources { ref kernel, .. } if kernel == "wide-aux:3col"),
            "expected Resources, got {err:?}"
        );
    }

    #[test]
    fn active_invocation_programs_are_pinned_against_eviction() {
        struct AuxUser;
        impl Kernel for AuxUser {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "aux-user"
            }
            fn cache_key(&self) -> String {
                "aux-user:primary".into()
            }
            fn resources(&self) -> Resources {
                Resources {
                    columns: 1,
                    spm_lines: 2,
                    srf_slots: 0,
                }
            }
            fn program(&self, g: &Geometry) -> Result<KernelProgram> {
                BakedScaleKernel::new(11).program(g)
            }
            fn execute(&self, ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<()> {
                ctx.dma_in(&[1; 128], 0)?;
                ctx.launch()?;
                // Loading the aux program overflows the two-slot memory.
                // The primary is pinned, so the cold bystander is evicted.
                ctx.launch_aux("aux-user:aux", || {
                    BakedScaleKernel::new(13).program(&ctx_geometry())
                })?;
                // The primary must still be resident: warm relaunch.
                ctx.launch()?;
                Ok(())
            }
        }
        fn ctx_geometry() -> Geometry {
            Geometry::paper()
        }

        let mut session = constrained_session(2 * baked_words());
        let bystander = BakedScaleKernel::new(99);
        session.run(&bystander, &[1i32, 2][..]).unwrap();
        assert!(session.is_warm(&bystander));

        let (_, report) = session.run(&AuxUser, &()).unwrap();
        assert_eq!(report.evictions, 1, "only the bystander may be evicted");
        assert_eq!(report.cold_launches, 2, "primary and aux load cold");
        assert_eq!(report.warm_launches, 1, "the pinned primary stays warm");
        assert!(!session.is_warm(&bystander));
        assert_eq!(session.loaded_programs(), 2);
    }

    /// A runnable kernel whose program is padded with NOP rows to a
    /// controllable size (for mixed-size eviction scenarios).
    struct PaddedKernel {
        rows: usize,
        key: String,
    }

    impl PaddedKernel {
        fn new(rows: usize, key: &str) -> Self {
            Self {
                rows,
                key: key.to_string(),
            }
        }

        fn words(rows: usize) -> usize {
            PaddedKernel::new(rows, "probe")
                .program(&Geometry::paper())
                .unwrap()
                .config_words()
        }
    }

    impl Kernel for PaddedKernel {
        type Input = ();
        type Output = ();
        fn name(&self) -> &str {
            "padded"
        }
        fn cache_key(&self) -> String {
            self.key.clone()
        }
        fn resources(&self) -> Resources {
            Resources::default()
        }
        fn program(&self, g: &Geometry) -> Result<KernelProgram> {
            let mut rows = vec![Row::new(g.rcs_per_column); self.rows];
            rows.push(Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit));
            Ok(KernelProgram::new(
                self.key.as_str(),
                vec![ColumnProgram::new(rows)?],
            )?)
        }
        fn execute(&self, ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<()> {
            ctx.launch()?;
            Ok(())
        }
    }

    #[test]
    fn size_aware_policy_frees_room_with_fewer_evictions() {
        // Working set: a small program (oldest), a large one, another small
        // (hottest).  Loading a second large program forces evictions.
        const SMALL: usize = 1;
        const LARGE: usize = 12;
        let capacity = 2 * PaddedKernel::words(SMALL) + 2 * PaddedKernel::words(LARGE);
        // Leave room for exactly one extra small program so the large load
        // cannot fit without evictions.
        let capacity = capacity - PaddedKernel::words(LARGE) + PaddedKernel::words(SMALL);

        let run_scenario = |policy_is_size_aware: bool| {
            let mut geometry = Geometry::paper();
            geometry.config_words = capacity;
            let accel = Vwr2a::with_geometry(geometry).unwrap();
            let mut session = if policy_is_size_aware {
                Session::with_policy(accel, SizeAwareLru)
            } else {
                Session::with_policy(accel, LruPolicy)
            };
            session
                .run(&PaddedKernel::new(SMALL, "small-old"), &())
                .unwrap();
            session
                .run(&PaddedKernel::new(LARGE, "large-mid"), &())
                .unwrap();
            session
                .run(&PaddedKernel::new(SMALL, "small-hot"), &())
                .unwrap();
            let (_, report) = session
                .run(&PaddedKernel::new(LARGE, "incoming"), &())
                .unwrap();
            (report.evictions, session)
        };

        let (lru_evictions, lru_session) = run_scenario(false);
        let (sa_evictions, sa_session) = run_scenario(true);
        // Pure LRU walks the age order: both small programs go before the
        // large one frees enough words.  The size-aware policy spends one
        // eviction on the large coldish program and keeps the small ones.
        assert!(
            sa_evictions < lru_evictions,
            "size-aware {sa_evictions} must beat LRU {lru_evictions}"
        );
        assert_eq!(sa_evictions, 1);
        assert!(sa_session.is_warm(&PaddedKernel::new(SMALL, "small-old")));
        assert!(sa_session.is_warm(&PaddedKernel::new(SMALL, "small-hot")));
        assert!(!lru_session.is_warm(&PaddedKernel::new(SMALL, "small-old")));
    }

    #[test]
    fn empty_stream_yields_a_zero_window_report() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(2);
        let report = session
            .run_stream(&kernel, std::iter::empty::<&[i32]>(), |_| Ok(()))
            .unwrap();
        assert_eq!(report.invocations, 0);
        assert_eq!(report.launches(), 0);
        assert_eq!(report.cycles, 0);
        assert_eq!(report.wall_cycles, 0);
        assert_eq!(report.serial_cycles(), 0);
        assert_eq!(report.overlap_ratio(), 0.0);
        assert_eq!(session.loaded_programs(), 0, "no window, no registration");
    }

    #[test]
    fn single_window_stream_degenerates_to_the_serial_schedule() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(3);
        let window: Vec<i32> = (0..100).collect();
        let mut outputs = Vec::new();
        let report = session
            .run_stream(&kernel, std::iter::once(window.as_slice()), |out| {
                outputs.push(out);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.invocations, 1);
        // No overlap is possible: the wall clock equals the sum of all
        // phases (including the completion interrupts the serial model
        // also pays).
        assert_eq!(report.wall_cycles, report.serial_cycles());
        assert_eq!(report.overlap_ratio(), 0.0);
        // The phase sum without interrupt servicing is the classic cycle
        // count.
        assert!(report.wall_cycles > report.cycles);
        assert_eq!(
            report.busy.config_load + report.busy.dma + report.busy.compute,
            report.cycles
        );
        assert_eq!(outputs[0], window.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn multi_window_stream_overlaps_and_stays_bit_identical() {
        let kernel = ScaleKernel::new(-3);
        let windows: Vec<Vec<i32>> = (0..6)
            .map(|w| (0..128).map(|i| i * (w + 1) - 64).collect())
            .collect();

        let mut stream_session = Session::new();
        let mut streamed = Vec::new();
        let report = stream_session
            .run_stream(&kernel, windows.iter().map(Vec::as_slice), |out| {
                streamed.push(out);
                Ok(())
            })
            .unwrap();

        // The acceptance bound: overlapped wall clock strictly below the
        // per-window DMA-in + compute + DMA-out sum.
        assert!(
            report.wall_cycles < report.cycles,
            "wall {} must beat the serial phase sum {}",
            report.wall_cycles,
            report.cycles
        );
        assert!(report.overlap_ratio() > 0.0);
        // Engine occupancy is conserved: the overlapped schedule does the
        // same work.
        assert_eq!(
            report.busy.config_load + report.busy.dma + report.busy.compute,
            report.cycles
        );

        // Outputs bit-identical to the batch path and to isolated runs.
        let (batched, _) = Session::new()
            .run_batch(&kernel, windows.iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(streamed, batched);
        for (window, out) in windows.iter().zip(&streamed) {
            let (isolated, _) = Session::new().run(&kernel, window.as_slice()).unwrap();
            assert_eq!(&isolated, out);
        }
    }

    #[test]
    fn replay_cache_serves_warm_launches_and_changes_no_modelled_numbers() {
        let kernel = ScaleKernel::new(7);
        let windows: Vec<Vec<i32>> = (0..5)
            .map(|w| (0..128).map(|i| i * 3 - 40 * w).collect())
            .collect();

        let mut replay = Session::new();
        assert!(replay.replay_enabled(), "replay is on by default");
        let mut interp = Session::new();
        interp.set_replay(false);
        assert!(!interp.replay_enabled());

        let (out_replay, rep_replay) = replay
            .run_batch(&kernel, windows.iter().map(Vec::as_slice))
            .unwrap();
        let (out_interp, rep_interp) = interp
            .run_batch(&kernel, windows.iter().map(Vec::as_slice))
            .unwrap();

        // The cold launch records; every warm launch replays.
        assert_eq!(rep_replay.warm_launches, 4);
        assert_eq!(rep_replay.replayed, 4);
        assert_eq!(replay.accelerator().replays(), 4);
        assert_eq!(rep_interp.replayed, 0);
        assert_eq!(interp.accelerator().replays(), 0);

        // Replay is a host-speed detail: outputs and every modelled number
        // agree with the interpreted run.
        assert_eq!(out_replay, out_interp);
        assert_eq!(rep_replay.cycles, rep_interp.cycles);
        assert_eq!(rep_replay.wall_cycles, rep_interp.wall_cycles);
        assert_eq!(rep_replay.counters, rep_interp.counters);
        assert_eq!(
            rep_replay.energy_nj, rep_interp.energy_nj,
            "energy priced from replayed counters matches interpretation"
        );
    }

    #[test]
    fn replayed_launch_energy_is_bit_identical_even_across_evictions() {
        // Satellite audit of the replay cache's energy story: a replayed
        // launch credits the recorded execution-counter delta verbatim and
        // re-adds the config streaming of the launch itself, so energy
        // priced from the counters must match interpretation bit for bit —
        // including after an eviction forces a cold rebuild, which changes
        // the per-launch config-word count but not the execution delta.
        use crate::testing::{constrained_sessions, BakedScaleKernel};
        use vwr2a_core::geometry::Geometry;

        let a = BakedScaleKernel::new(2);
        let b = BakedScaleKernel::new(3);
        let windows: Vec<Vec<i32>> = (0..3)
            .map(|w| (0..96).map(|i| i + 5 * w).collect())
            .collect();
        // Room for exactly one program: each switch of kernel evicts the
        // other and rebuilds cold.
        let words = a.program(&Geometry::paper()).unwrap().config_words();

        let run_sequence = |replay: bool| {
            let mut session = constrained_sessions(1, words).pop().unwrap();
            session.set_replay(replay);
            let mut energy_nj = 0u64;
            let mut counters = vwr2a_core::ActivityCounters::default();
            let mut evictions = 0u64;
            let mut replayed = 0u64;
            for kernel in [&a, &a, &b, &a, &a] {
                for w in &windows {
                    let (_, report) = session.run(kernel, w.as_slice()).unwrap();
                    energy_nj += report.energy_nj;
                    counters += report.counters;
                    evictions += report.evictions;
                    replayed += report.replayed;
                }
            }
            (energy_nj, counters, evictions, replayed)
        };

        let (e_on, c_on, ev_on, replays) = run_sequence(true);
        let (e_off, c_off, ev_off, _) = run_sequence(false);
        assert!(ev_on > 0, "the sequence forces evictions and cold rebuilds");
        assert!(replays > 0, "warm relaunches actually replayed");
        assert_eq!(ev_on, ev_off, "eviction behaviour is replay-independent");
        assert_eq!(c_on, c_off, "replay credits the recorded deltas verbatim");
        assert!(e_on > 0);
        assert_eq!(
            e_on, e_off,
            "energy from counters is bit-identical replay-on vs replay-off"
        );
    }

    #[test]
    fn sink_error_aborts_the_stream_but_the_session_stays_usable() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(5);
        let windows: Vec<Vec<i32>> = (1..=4).map(|w| vec![w; 16]).collect();
        let mut delivered = 0;
        let err = session
            .run_stream(&kernel, windows.iter().map(Vec::as_slice), |out| {
                if delivered == 1 {
                    return Err(RuntimeError::sink("downstream is full"));
                }
                assert_eq!(out[0], 5 * (delivered + 1));
                delivered += 1;
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        assert_eq!(delivered, 1, "the stream must stop at the failing sink");

        // The session survives: the program is still resident and a fresh
        // stream runs warm and bit-identical.
        assert!(session.is_warm(&kernel));
        let (outputs, report) = session
            .run_batch(&kernel, windows.iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(report.cold_launches, 0, "still warm after the abort");
        assert_eq!(outputs[3], vec![20; 16]);
    }

    #[test]
    fn residency_and_load_hooks_track_the_session_lifetime() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(6);
        assert!(!session.is_resident(&kernel));
        assert!(!session.is_resident_key("scale"));
        assert_eq!(session.free_compute_at(), 0);
        assert_eq!(session.busy(), Occupancy::default());

        // Registration loads the program: resident but not yet warm.
        session.register(&kernel).unwrap();
        assert!(session.is_resident(&kernel));
        assert!(session.is_resident_key("scale"));
        assert!(!session.is_warm(&kernel));
        assert_eq!(session.free_compute_at(), 0, "no compute ran yet");

        let input: Vec<i32> = (0..64).collect();
        let (_, first) = session.run(&kernel, &input).unwrap();
        let after_first = session.free_compute_at();
        assert!(after_first > 0);
        let (_, second) = session.run(&kernel, &input).unwrap();
        // The load metric accumulates monotonically across invocations and
        // conserves the per-report busy split.
        assert!(session.free_compute_at() > after_first);
        let busy = session.busy();
        assert_eq!(busy.compute, session.free_compute_at());
        assert_eq!(
            busy.total(),
            (first.busy + second.busy).total() - first.busy.interrupt - second.busy.interrupt
        );

        // Eviction (here: explicit unload) drops residency again.
        session.unload(&kernel).unwrap();
        assert!(!session.is_resident(&kernel));
    }

    #[test]
    fn prefetch_makes_the_next_launch_warm_at_the_same_total_work() {
        let kernel = BakedScaleKernel::new(6);
        let input: Vec<i32> = (0..80).collect();

        let mut cold_session = Session::new();
        let (cold_out, cold) = cold_session.run(&kernel, &input).unwrap();

        let mut session = Session::new();
        let staged = session.prefetch(&kernel).unwrap().expect("streams words");
        assert!(staged.config_cycles > 0);
        assert_eq!(staged.evictions, 0);
        assert_eq!(staged.counters.config_words_loaded, staged.config_cycles);
        assert!(session.is_warm(&kernel), "prefetched => next launch warm");
        assert_eq!(session.prefetches(), 1);

        let (out, warm) = session.run(&kernel, &input).unwrap();
        assert_eq!(out, cold_out, "prefetch must not change outputs");
        assert_eq!(warm.cold_launches, 0);
        assert_eq!(warm.warm_launches, 1);
        assert_eq!(warm.counters.config_words_loaded, 0);
        // Same total work as one cold launch, just split across the
        // prefetch and the (now warm) launch.
        assert_eq!(staged.config_cycles + warm.cycles, cold.cycles);

        // A second prefetch of a warm program has nothing to stage.
        assert!(session.prefetch(&kernel).unwrap().is_none());
        assert_eq!(session.prefetches(), 1);
    }

    #[test]
    fn repeated_prefetch_before_the_launch_streams_only_once() {
        let mut session = Session::new();
        let kernel = BakedScaleKernel::new(4);
        assert!(session.prefetch(&kernel).unwrap().is_some());
        assert!(session.prefetch(&kernel).unwrap().is_none());
        assert_eq!(session.prefetches(), 1);
        let words = session.accelerator().counters().config_words_loaded;
        assert_eq!(words, baked_words() as u64, "streamed exactly once");
    }

    #[test]
    fn prefetched_programs_are_pinned_until_their_launch() {
        // Two-slot memory: a prefetched program and a warm bystander fill
        // it.  Loading a third program must evict the *bystander* (LRU
        // would pick the prefetched program — it is older), because the
        // prefetched one is pinned until the launch it was staged for.
        let mut session = constrained_session(2 * baked_words());
        let staged = BakedScaleKernel::new(21);
        let bystander = BakedScaleKernel::new(22);
        let incoming = BakedScaleKernel::new(23);
        let input = [1i32, 2, 3];

        session.prefetch(&staged).unwrap().expect("streams words");
        session.run(&bystander, &input[..]).unwrap();

        let (_, report) = session.run(&incoming, &input[..]).unwrap();
        assert_eq!(report.evictions, 1);
        assert!(
            session.is_warm(&staged),
            "the prefetched program must survive the eviction"
        );
        assert!(!session.is_warm(&bystander), "the bystander was evicted");

        // The staged launch is warm; afterwards the pin is released and
        // the program competes for eviction normally again.
        let (_, warm) = session.run(&staged, &input[..]).unwrap();
        assert_eq!(warm.cold_launches, 0);
        assert_eq!(warm.warm_launches, 1);
        session.run(&incoming, &input[..]).unwrap();
        let (_, after) = session.run(&bystander, &input[..]).unwrap();
        assert_eq!(after.evictions, 1, "now the LRU victim is evictable");
        assert!(!session.is_warm(&staged), "pin released after the launch");
    }

    #[test]
    fn stale_prefetches_are_evicted_only_as_a_last_resort() {
        // A prefetched program whose launch never comes must not wedge the
        // memory: while other residents can make room they are preferred,
        // but once the staged program is the only way to fit a load, it is
        // sacrificed (wasting only its staged words) instead of failing
        // with ConfigMemoryFull.
        let mut session = constrained_session(2 * baked_words());
        let stale = BakedScaleKernel::new(31);
        let other = BakedScaleKernel::new(32);
        let input = [1i32, 2];
        session.prefetch(&stale).unwrap().expect("streams words");
        session.run(&other, &input[..]).unwrap();

        // A program too big for one freed slot: nothing but evicting
        // *both* residents fits it, so even the soft-pinned stale
        // prefetch must go.
        let rows = (1..)
            .find(|&r| PaddedKernel::words(r) > baked_words())
            .unwrap();
        let big = PaddedKernel::new(rows, "big");
        assert!(
            PaddedKernel::words(rows) <= 2 * baked_words(),
            "the probe must still fit the whole memory"
        );
        session.run(&big, &()).unwrap();
        assert!(
            !session.is_warm(&stale),
            "the stale prefetch was the last resort"
        );
        assert!(!session.is_warm(&other));
        assert_eq!(session.evictions(), 2);
    }

    #[test]
    fn prefetch_that_cannot_fit_fails_like_register() {
        let mut session = constrained_session(baked_words() - 1);
        let err = session.prefetch(&BakedScaleKernel::new(2)).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
    }

    #[test]
    fn needed_soon_shield_redirects_the_victim_and_counts_the_avert() {
        // Two-slot memory holding A (the LRU victim) and B.  With A
        // announced as needed soon, loading C sacrifices B instead, and
        // the redirect is counted as an averted eviction.
        let mut session = constrained_session(2 * baked_words());
        let a = BakedScaleKernel::new(41);
        let b = BakedScaleKernel::new(42);
        let c = BakedScaleKernel::new(43);
        let input = [1i32, 2];
        session.run(&a, &input[..]).unwrap();
        session.run(&b, &input[..]).unwrap();

        session.set_needed_soon([a.cache_key()]);
        session.run(&c, &input[..]).unwrap();
        assert!(session.is_resident(&a), "the needed-soon program survived");
        assert!(!session.is_resident(&b), "the shield redirected onto B");
        assert_eq!(session.evictions_averted(), 1);

        // Clearing the announcement restores plain LRU: reloading B now
        // evicts A (oldest) without incrementing the averted counter.
        session.set_needed_soon(std::iter::empty::<String>());
        session.run(&b, &input[..]).unwrap();
        assert!(!session.is_resident(&a));
        assert_eq!(session.evictions_averted(), 1);
    }

    #[test]
    fn an_over_announced_needed_soon_set_never_wedges_the_memory() {
        // Every resident announced as needed: the shield must fall (it is
        // a hint, not a pin) and the load proceeds as plain LRU would —
        // with nothing counted as averted, since nothing was redirected.
        let mut session = constrained_session(2 * baked_words());
        let a = BakedScaleKernel::new(44);
        let b = BakedScaleKernel::new(45);
        let c = BakedScaleKernel::new(46);
        let input = [1i32, 2];
        session.run(&a, &input[..]).unwrap();
        session.run(&b, &input[..]).unwrap();

        session.set_needed_soon([a.cache_key(), b.cache_key()]);
        session.run(&c, &input[..]).unwrap();
        assert!(!session.is_resident(&a), "LRU order still applies");
        assert!(session.is_resident(&b));
        assert_eq!(session.evictions_averted(), 0);
    }

    #[test]
    fn a_speculative_prefetch_never_evicts_a_needed_soon_resident() {
        // A prefetch that could only fit by sacrificing needed-soon
        // residents gives up (best-effort), while an authoritative launch
        // of the same kernel still makes room.
        let mut session = constrained_session(2 * baked_words());
        let a = BakedScaleKernel::new(47);
        let b = BakedScaleKernel::new(48);
        let c = BakedScaleKernel::new(49);
        let input = [1i32, 2];
        session.run(&a, &input[..]).unwrap();
        session.run(&b, &input[..]).unwrap();

        session.set_needed_soon([a.cache_key(), b.cache_key()]);
        let err = session.prefetch(&c).unwrap_err();
        assert!(
            matches!(err, RuntimeError::Core(CoreError::ConfigMemoryFull { .. })),
            "expected ConfigMemoryFull, got {err:?}"
        );
        assert!(session.is_resident(&a), "the refused stage evicted nothing");
        assert!(session.is_resident(&b));

        session.run(&c, &input[..]).unwrap();
        assert!(session.is_resident(&c), "the launch itself still fits");
    }

    #[test]
    fn eviction_policies_observe_loads_and_evictions() {
        // The residency layer reports every successful program load and
        // every eviction (with the victim's launch count) to the policy —
        // the feedback channel adaptive policies like ArcPolicy learn from.
        use std::sync::{Arc, Mutex};

        #[derive(Debug, Default)]
        struct Recording {
            events: Arc<Mutex<Vec<String>>>,
        }
        impl EvictionPolicy for Recording {
            fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
                candidates.iter().min_by_key(|c| c.last_use).map(|c| c.key)
            }
            fn note_load(&self, key: &str) {
                self.events.lock().unwrap().push(format!("load {key}"));
            }
            fn note_eviction(&self, key: &str, launches: u64) {
                self.events
                    .lock()
                    .unwrap()
                    .push(format!("evict {key} launches={launches}"));
            }
        }

        let events = Arc::new(Mutex::new(Vec::new()));
        let policy = Recording {
            events: Arc::clone(&events),
        };
        let mut geometry = Geometry::paper();
        geometry.config_words = 2 * baked_words();
        let mut session = Session::with_policy(Vwr2a::with_geometry(geometry).unwrap(), policy);
        let a = BakedScaleKernel::new(51);
        let b = BakedScaleKernel::new(52);
        let c = BakedScaleKernel::new(53);
        let input = [1i32, 2];
        session.run(&a, &input[..]).unwrap();
        session.run(&a, &input[..]).unwrap(); // warm: no load notification
        session.run(&b, &input[..]).unwrap();
        session.run(&c, &input[..]).unwrap(); // evicts A after two launches

        assert_eq!(
            *events.lock().unwrap(),
            vec![
                format!("load {}", a.cache_key()),
                format!("load {}", b.cache_key()),
                format!("evict {} launches=2", a.cache_key()),
                format!("load {}", c.cache_key()),
            ]
        );
    }

    #[test]
    fn config_words_hook_matches_the_built_program() {
        let kernel = BakedScaleKernel::new(2);
        let geometry = Geometry::paper();
        assert_eq!(
            kernel.config_words(&geometry).unwrap(),
            kernel.program(&geometry).unwrap().config_words()
        );
    }

    #[test]
    fn explicit_unload_forces_a_cold_relaunch() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(4);
        let input = [5i32, 6, 7];
        session.run(&kernel, &input[..]).unwrap();
        assert!(session.is_warm(&kernel));
        assert!(session.unload(&kernel).unwrap());
        assert!(!session.is_warm(&kernel));
        assert!(!session.unload(&kernel).unwrap(), "already gone");
        let (out, report) = session.run(&kernel, &input[..]).unwrap();
        assert_eq!(out, vec![20, 24, 28]);
        assert_eq!(report.cold_launches, 1);
        assert_eq!(session.evictions(), 0, "explicit unloads are not evictions");
    }
}
