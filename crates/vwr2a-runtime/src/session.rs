//! The [`Session`] runtime: load kernels once, relaunch them warm.

use std::borrow::Borrow;
use std::collections::HashMap;
use vwr2a_core::config_mem::KernelId;
use vwr2a_core::geometry::Geometry;
use vwr2a_core::program::KernelProgram;
use vwr2a_core::Vwr2a;

use crate::error::{Result, RuntimeError};
use crate::report::RunReport;

/// Estimated cycles for one host SRF write over the slave port.
pub const SRF_WRITE_CYCLES: u64 = 2;

/// Static resource needs a kernel declares so a [`Session`] can reject it
/// before any staging happens, instead of failing mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// Minimum array columns the kernel needs (kernels that adapt to the
    /// geometry declare their smallest workable configuration).
    pub columns: usize,
    /// SPM lines the kernel's data layout occupies.
    pub spm_lines: usize,
    /// SRF entries used for per-launch parameters (per column).
    pub srf_slots: usize,
}

/// A workload that runs on VWR2A through a [`Session`].
///
/// Implementations declare their configuration-memory program once
/// ([`Kernel::program`]) and drive staging, launches and read-back through
/// the [`LaunchCtx`] handed to [`Kernel::execute`].  Because the session
/// owns program residency, a kernel never decides cold-vs-warm itself:
/// [`LaunchCtx::launch`] streams configuration words only the first time a
/// program runs in the session, exactly like the real hardware keeps a
/// loaded kernel resident in the per-slot program memories.
pub trait Kernel {
    /// Borrowed input type of one invocation (e.g. `[i32]` for a sample
    /// window, a struct of arrays for complex data).
    type Input: ?Sized;
    /// Owned output type of one invocation.
    type Output;

    /// Kernel name used in reports and error messages.
    fn name(&self) -> &str;

    /// Key identifying the configuration-memory program this kernel needs.
    ///
    /// Two kernel instances with equal keys share one loaded program (and
    /// therefore warm each other up).  Instances whose programs differ —
    /// e.g. FIR kernels with different baked-in taps — must produce
    /// different keys.
    fn cache_key(&self) -> String {
        self.name().to_string()
    }

    /// Declared resource needs, validated against the session's geometry at
    /// registration.
    fn resources(&self) -> Resources;

    /// Builds the kernel's configuration-memory program for the given
    /// geometry.  Called once per [`Kernel::cache_key`] per session.
    fn program(&self, geometry: &Geometry) -> Result<KernelProgram>;

    /// Runs one invocation: stage inputs, launch (possibly repeatedly, e.g.
    /// once per FFT stage or per FIR block), collect outputs.
    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &Self::Input) -> Result<Self::Output>;
}

#[derive(Debug)]
struct Loaded {
    id: KernelId,
    launches: u64,
}

/// Execution context handed to [`Kernel::execute`]: a view of the session's
/// accelerator that accounts every host-visible cost (DMA cycles, SRF
/// writes, launches) and routes launches through the session's
/// configuration-memory registry.
#[derive(Debug)]
pub struct LaunchCtx<'a> {
    accel: &'a mut Vwr2a,
    programs: &'a mut HashMap<String, Loaded>,
    primary_key: String,
    cycles: u64,
    cold_launches: u64,
    warm_launches: u64,
}

impl LaunchCtx<'_> {
    /// The array geometry (for kernels whose layout depends on it).
    pub fn geometry(&self) -> Geometry {
        *self.accel.geometry()
    }

    /// Cycles accumulated so far in this invocation.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// DMAs `data` into the SPM at `spm_word_addr`, charging the transfer
    /// cycles to the invocation.
    pub fn dma_in(&mut self, data: &[i32], spm_word_addr: usize) -> Result<()> {
        self.cycles += self.accel.dma_to_spm(data, spm_word_addr)?;
        Ok(())
    }

    /// DMAs `len` words out of the SPM from `spm_word_addr`, charging the
    /// transfer cycles to the invocation.
    pub fn dma_out(&mut self, spm_word_addr: usize, len: usize) -> Result<Vec<i32>> {
        let (data, cycles) = self.accel.dma_from_spm(spm_word_addr, len)?;
        self.cycles += cycles;
        Ok(data)
    }

    /// Writes one kernel parameter into a column's SRF over the slave port,
    /// charging [`SRF_WRITE_CYCLES`].
    pub fn write_param(&mut self, column: usize, index: usize, value: i32) -> Result<()> {
        self.accel.write_srf(column, index, value)?;
        self.cycles += SRF_WRITE_CYCLES;
        Ok(())
    }

    /// Reads back one SRF entry (e.g. a scalar reduction result).
    pub fn read_param(&mut self, column: usize, index: usize) -> Result<i32> {
        Ok(self.accel.read_srf(column, index)?)
    }

    /// Launches the kernel's primary program.
    ///
    /// The first launch of the program in the session streams its
    /// configuration words (a *cold* launch); every later launch — within
    /// this invocation or any later one — is *warm* and pays execution
    /// cycles only.  Returns the cycles of this launch.
    pub fn launch(&mut self) -> Result<u64> {
        let key = self.primary_key.clone();
        self.launch_key(&key)
    }

    /// Launches an auxiliary program, loading it (and caching it under
    /// `key`, session-wide) on first use.  Kernels with more than one
    /// program phase — e.g. the real-FFT recombination passes — use this so
    /// every phase gets the same load-once/warm-relaunch treatment as the
    /// primary program.
    ///
    /// Unlike the primary program, auxiliary programs are validated against
    /// the geometry when first built (inside `load_kernel`), not at
    /// [`Session::register`] time — a kernel whose aux programs might not
    /// fit a constrained geometry should cover them in its declared
    /// [`Resources`] so registration still rejects it up front.
    pub fn launch_aux(
        &mut self,
        key: &str,
        build: impl FnOnce() -> Result<KernelProgram>,
    ) -> Result<u64> {
        if !self.programs.contains_key(key) {
            let program = build()?;
            let id = self.accel.load_kernel(&program)?;
            self.programs
                .insert(key.to_string(), Loaded { id, launches: 0 });
        }
        self.launch_key(key)
    }

    fn launch_key(&mut self, key: &str) -> Result<u64> {
        let entry = self
            .programs
            .get_mut(key)
            .expect("program registered before launch");
        debug_assert!(
            self.accel.config_mem().contains(entry.id),
            "registry id must refer to a resident configuration-memory kernel"
        );
        let stats = if entry.launches == 0 {
            self.cold_launches += 1;
            self.accel.run_kernel(entry.id)?
        } else {
            self.warm_launches += 1;
            self.accel.run_kernel_warm(entry.id)?
        };
        entry.launches += 1;
        self.cycles += stats.cycles;
        Ok(stats.cycles)
    }
}

/// Owns a [`Vwr2a`] instance and a registry of loaded kernels, making
/// configuration-memory reuse the default execution model.
///
/// The paper's headline host-side behaviour — "kernels are loaded once and
/// then re-invoked cheaply" — becomes unavoidable here: the first
/// [`Session::run`] of a kernel loads its program and launches cold; every
/// later run of the same kernel (or another instance with the same
/// [`Kernel::cache_key`]) launches warm, skipping the configuration-word
/// streaming entirely.  [`Session::run_batch`] and [`Session::run_stream`]
/// push whole input sequences through a loaded kernel and return one
/// aggregated [`RunReport`].
///
/// # Example
///
/// ```
/// use vwr2a_runtime::Session;
/// use vwr2a_runtime::testing::ScaleKernel;
///
/// # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
/// let mut session = Session::new();
/// let scale = ScaleKernel::new(2);
/// let window: Vec<i32> = (0..128).collect();
///
/// let (cold_out, cold) = session.run(&scale, &window)?;
/// let (warm_out, warm) = session.run(&scale, &window)?;
/// assert_eq!(cold_out, warm_out);
/// assert_eq!(cold.cold_launches, 1);
/// assert_eq!(warm.warm_launches, 1);
/// // The warm repeat skips the configuration-word streaming.
/// assert!(warm.cycles < cold.cycles);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    accel: Vwr2a,
    programs: HashMap<String, Loaded>,
}

impl Session {
    /// Creates a session around an accelerator with the paper's geometry.
    pub fn new() -> Self {
        Self::with_accelerator(Vwr2a::new())
    }

    /// Creates a session around a custom accelerator (ablation geometries,
    /// custom DMA timing).
    pub fn with_accelerator(accel: Vwr2a) -> Self {
        Self {
            accel,
            programs: HashMap::new(),
        }
    }

    /// The underlying accelerator.
    pub fn accelerator(&self) -> &Vwr2a {
        &self.accel
    }

    /// Mutable access to the underlying accelerator (tests, manual staging).
    pub fn accelerator_mut(&mut self) -> &mut Vwr2a {
        &mut self.accel
    }

    /// Number of distinct programs resident in the configuration memory.
    pub fn loaded_programs(&self) -> usize {
        self.programs.len()
    }

    /// `true` if the kernel's program is already resident, i.e. its next
    /// launch will be warm.
    pub fn is_warm<K: Kernel>(&self, kernel: &K) -> bool {
        self.programs
            .get(&kernel.cache_key())
            .is_some_and(|p| p.launches > 0)
    }

    /// Registers a kernel without running it: validates its resource needs
    /// and loads its program into the configuration memory.  [`Session::run`]
    /// does this implicitly; pre-registering is useful to front-load
    /// validation errors.
    pub fn register<K: Kernel>(&mut self, kernel: &K) -> Result<()> {
        let key = kernel.cache_key();
        if self.programs.contains_key(&key) {
            return Ok(());
        }
        let geometry = *self.accel.geometry();
        let needs = kernel.resources();
        let check = |what: String| RuntimeError::Resources {
            kernel: kernel.name().to_string(),
            what,
        };
        if needs.columns > geometry.columns {
            return Err(check(format!(
                "needs {} columns, array has {}",
                needs.columns, geometry.columns
            )));
        }
        if needs.spm_lines > geometry.spm_lines() {
            return Err(check(format!(
                "needs {} SPM lines, array has {}",
                needs.spm_lines,
                geometry.spm_lines()
            )));
        }
        if needs.srf_slots > geometry.srf_entries {
            return Err(check(format!(
                "needs {} SRF slots, array has {}",
                needs.srf_slots, geometry.srf_entries
            )));
        }
        let program = kernel.program(&geometry)?;
        let id = self.accel.load_kernel(&program)?;
        self.programs.insert(key, Loaded { id, launches: 0 });
        Ok(())
    }

    /// Runs one invocation of `kernel` over `input`.
    ///
    /// The first run of a kernel in the session launches cold (its program
    /// is loaded and its configuration words streamed); repeats launch
    /// warm.  Returns the kernel's output and the invocation's report.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Resources`] if the kernel does not fit the
    /// array, [`RuntimeError::InvalidInput`] if the kernel rejects the
    /// input, or any simulator error.
    pub fn run<K: Kernel>(
        &mut self,
        kernel: &K,
        input: &K::Input,
    ) -> Result<(K::Output, RunReport)> {
        let mut report = RunReport::new(kernel.name());
        let output = self.run_into(kernel, input, &mut report)?;
        Ok((output, report))
    }

    /// Runs `kernel` over every input of a batch without re-staging its
    /// program: the first window may launch cold, all later windows launch
    /// warm.  Outputs are returned in input order together with one
    /// aggregated report.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the batch.
    pub fn run_batch<K, I>(&mut self, kernel: &K, inputs: I) -> Result<(Vec<K::Output>, RunReport)>
    where
        K: Kernel,
        I: IntoIterator,
        I::Item: Borrow<K::Input>,
    {
        let mut outputs = Vec::new();
        let report = self.run_stream(kernel, inputs, |out| outputs.push(out))?;
        Ok((outputs, report))
    }

    /// Streams inputs through `kernel`, handing each output to `sink` as
    /// soon as it is ready (constant memory in the number of windows).
    /// Returns the aggregated report.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the stream.
    pub fn run_stream<K, I, F>(&mut self, kernel: &K, inputs: I, mut sink: F) -> Result<RunReport>
    where
        K: Kernel,
        I: IntoIterator,
        I::Item: Borrow<K::Input>,
        F: FnMut(K::Output),
    {
        let mut report = RunReport::new(kernel.name());
        for input in inputs {
            let output = self.run_into(kernel, input.borrow(), &mut report)?;
            sink(output);
        }
        Ok(report)
    }

    fn run_into<K: Kernel>(
        &mut self,
        kernel: &K,
        input: &K::Input,
        report: &mut RunReport,
    ) -> Result<K::Output> {
        self.register(kernel)?;
        let before = self.accel.counters();
        let mut ctx = LaunchCtx {
            accel: &mut self.accel,
            programs: &mut self.programs,
            primary_key: kernel.cache_key(),
            cycles: 0,
            cold_launches: 0,
            warm_launches: 0,
        };
        let output = kernel.execute(&mut ctx, input)?;
        report.invocations += 1;
        report.cold_launches += ctx.cold_launches;
        report.warm_launches += ctx.warm_launches;
        report.cycles += ctx.cycles;
        report.counters += self.accel.counters() - before;
        Ok(output)
    }
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}
