//! Heterogeneous execution backends behind a [`crate::pool::Pool`].
//!
//! The VWR2A paper places the CGRA inside a heterogeneous edge SoC, next
//! to a Cortex-M4 host and fixed-function accelerators.  This module is
//! that SoC's execution substrate seen through one interface: a
//! [`Backend`] accepts `(kernel, windows)` jobs, reports residency and
//! warmth, and executes windows onto its own [`crate::pipeline::
//! StreamSchedule`]-backed timeline.  Three implementations ship:
//!
//! * [`ArrayBackend`] — a CGRA array ([`Session`] + stream schedule),
//!   with the full prefetch/eviction residency story;
//! * [`FftBackend`] — the fixed-function FFT engine
//!   ([`vwr2a_fftaccel::FftAccelerator`]), costed from its own cycle
//!   model (setup + butterflies + IO) and accepting only FFT-shaped jobs;
//! * [`CpuBackend`] — the Cortex-M4 host ISS, for tiny jobs where an
//!   array's configuration-reload cost would dominate.
//!
//! A kernel advertises which backends besides the CGRA could serve it via
//! [`crate::Kernel::offload`]; the pool's placement strategies match that
//! against each backend's capability mask and route the job to whichever
//! backend clears it cheapest in cycles.

use std::fmt;
use vwr2a_core::geometry::Geometry;
use vwr2a_fftaccel::FftAccelerator;
use vwr2a_soc::cpu::Cpu;
use vwr2a_soc::sram::Sram;

use crate::error::Result;
use crate::pipeline::WindowPhases;
use crate::report::RunReport;
use crate::session::{Kernel, Session};

/// Capability bit: the backend executes CGRA configuration-memory
/// programs (every [`Kernel`] has one — see [`Kernel::program`]).
pub const CAP_CGRA: u32 = 1 << 0;

/// Capability bit: the backend executes FFT-shaped jobs on a
/// fixed-function engine (kernels advertising [`Offload::fft`]).
pub const CAP_FFT: u32 = 1 << 1;

/// Capability bit: the backend executes jobs on the Cortex-M4 host CPU
/// (kernels advertising [`Offload::cpu_cycles`]).
pub const CAP_CPU: u32 = 1 << 2;

/// What kind of execution substrate a [`Backend`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// A CGRA array behind a [`Session`].
    #[default]
    Array,
    /// The fixed-function FFT accelerator.
    FftAccel,
    /// The Cortex-M4 host CPU.
    Cpu,
}

impl BackendKind {
    /// Short lower-case label used in report names and bench tables.
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Array => "array",
            BackendKind::FftAccel => "fft",
            BackendKind::Cpu => "cpu",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The FFT shape of a kernel's window, for jobs the fixed-function engine
/// could serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftShape {
    /// Transform length in (real or complex) input points.
    pub points: usize,
    /// `true` for the optimised real-valued flow, `false` for complex.
    pub real: bool,
}

/// A kernel's declaration of which non-CGRA backends could serve it, and
/// at what modelled cost (returned by [`Kernel::offload`]).
///
/// Every kernel runs on the CGRA; the two optional fields open the other
/// substrates.  The default — both `None` — is CGRA-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Offload {
    /// `Some(shape)` if one window of this kernel is exactly one FFT the
    /// fixed-function engine can run ([`Kernel::execute_fft`] must then be
    /// implemented).
    pub fft: Option<FftShape>,
    /// `Some(cycles)` if the Cortex-M4 host can run one window in roughly
    /// `cycles` ISS cycles ([`Kernel::execute_cpu`] must then be
    /// implemented).  This is the *placement estimate*; the executed
    /// window is charged its actual ISS cycle count.
    pub cpu_cycles: Option<u64>,
}

impl Offload {
    /// The capability classes this kernel's jobs belong to, as a mask of
    /// [`CAP_CGRA`] / [`CAP_FFT`] / [`CAP_CPU`] bits.  CGRA is always set.
    pub fn classes(&self) -> u32 {
        let mut mask = CAP_CGRA;
        if self.fft.is_some() {
            mask |= CAP_FFT;
        }
        if self.cpu_cycles.is_some() {
            mask |= CAP_CPU;
        }
        mask
    }
}

/// Mutable access to a backend's execution substrate, for the pool's
/// generic per-window dispatch (the crate-private `run_window_on`).
#[derive(Debug)]
pub enum ExecHandle<'a> {
    /// A CGRA array session.
    Array(&'a mut Session),
    /// The fixed-function FFT engine.
    Fft(&'a mut FftBackend),
    /// The Cortex-M4 host.
    Cpu(&'a mut CpuBackend),
}

/// One execution substrate under the pool's scheduler.
///
/// The trait is object-safe — the pool stores `Vec<Box<dyn Backend>>` —
/// so per-kernel work (program footprints, window execution) happens in
/// generic pool code through [`ExecHandle`] and the crate-private
/// `run_window_on` rather than on the trait itself.
pub trait Backend: fmt::Debug + Send {
    /// What kind of substrate this is.
    fn kind(&self) -> BackendKind;

    /// Capability mask of the jobs this backend can serve
    /// ([`CAP_CGRA`] / [`CAP_FFT`] / [`CAP_CPU`]).
    fn capabilities(&self) -> u32;

    /// The CGRA array geometry, for backends that have one.  The pool
    /// prices configuration reloads per backend through this — mixed
    /// geometries across a fleet are legal.
    fn geometry(&self) -> Option<&Geometry>;

    /// `true` if the program behind `key` is resident on this backend
    /// (loaded in an array's configuration memory; the engine's current
    /// programming for fixed-function backends).
    fn is_resident(&self, key: &str) -> bool;

    /// `true` if a launch of `key` would pay no configuration reload.
    fn is_warm(&self, key: &str) -> bool;

    /// Number of distinct programs resident on the backend.
    fn loaded_programs(&self) -> usize;

    /// Lifetime compute-busy cycles — the load metric behind
    /// [`crate::pool::LeastLoaded`].
    fn busy_compute(&self) -> u64;

    /// Modelled cycles for one window of a job with the given offload
    /// declaration, or `None` if this backend cannot serve the job (or
    /// does not model per-window cost, like the arrays, whose cost comes
    /// from observed execution instead).
    fn window_cycles(&self, offload: &Offload) -> Option<u64>;

    /// Modelled energy for one window of a job with the given offload
    /// declaration, in nanojoules — `None` under the same conditions as
    /// [`Backend::window_cycles`].  Offload backends derive it from their
    /// own cycle model through the [`vwr2a_energy::EnergyModel`]
    /// calibration; arrays return `None` (their estimate comes from the
    /// pool's observed per-window cycles instead).
    fn window_energy_nj(&self, offload: &Offload) -> Option<u64> {
        let _ = offload;
        None
    }

    /// Mutable handle onto the substrate, for window execution.
    fn exec(&mut self) -> ExecHandle<'_>;

    /// The underlying [`Session`], for CGRA backends.
    fn as_session(&self) -> Option<&Session> {
        None
    }

    /// Mutable access to the underlying [`Session`], for CGRA backends.
    fn as_session_mut(&mut self) -> Option<&mut Session> {
        None
    }
}

/// A CGRA array as a [`Backend`]: wraps a [`Session`], preserving the
/// full residency story — warm relaunches, LRU (or custom) eviction and
/// speculative configuration prefetch.
#[derive(Debug)]
pub struct ArrayBackend {
    session: Session,
}

impl ArrayBackend {
    /// Wraps a session.
    pub fn new(session: Session) -> Self {
        Self { session }
    }

    /// The wrapped session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the wrapped session.
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }
}

impl Backend for ArrayBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Array
    }

    fn capabilities(&self) -> u32 {
        CAP_CGRA
    }

    fn geometry(&self) -> Option<&Geometry> {
        Some(self.session.accelerator().geometry())
    }

    fn is_resident(&self, key: &str) -> bool {
        self.session.is_resident_key(key)
    }

    fn is_warm(&self, key: &str) -> bool {
        self.session.is_warm_key(key)
    }

    fn loaded_programs(&self) -> usize {
        self.session.loaded_programs()
    }

    fn busy_compute(&self) -> u64 {
        self.session.free_compute_at()
    }

    fn window_cycles(&self, _offload: &Offload) -> Option<u64> {
        None
    }

    fn exec(&mut self) -> ExecHandle<'_> {
        ExecHandle::Array(&mut self.session)
    }

    fn as_session(&self) -> Option<&Session> {
        Some(&self.session)
    }

    fn as_session_mut(&mut self) -> Option<&mut Session> {
        Some(&mut self.session)
    }
}

/// The fixed-function FFT engine as a [`Backend`].
///
/// The engine has no configuration memory — it is programmed over the
/// slave port before every run, which its cycle model charges as
/// `setup_cycles` on each window — so "residency" degenerates to *which
/// job shape it was last programmed for*.  It accepts only FFT-shaped
/// jobs ([`Offload::fft`]); its per-window cost is projected from its own
/// [`vwr2a_fftaccel::FftAccelConfig`] cycle model, so scheduler
/// projections match executions exactly.
#[derive(Debug)]
pub struct FftBackend {
    accel: FftAccelerator,
    programmed: Option<String>,
    busy_compute: u64,
}

impl FftBackend {
    /// An FFT backend around the default (paper-like) engine.
    pub fn new() -> Self {
        Self::with_accelerator(FftAccelerator::new())
    }

    /// An FFT backend around a custom-configured engine.
    pub fn with_accelerator(accel: FftAccelerator) -> Self {
        Self {
            accel,
            programmed: None,
            busy_compute: 0,
        }
    }

    /// The wrapped accelerator model.
    pub fn accelerator(&self) -> &FftAccelerator {
        &self.accel
    }

    /// Runs one window, folding launch/cycle accounting into `report`.
    fn run_into<K: Kernel>(
        &mut self,
        kernel: &K,
        key: &str,
        input: &K::Input,
        report: &mut RunReport,
    ) -> Result<(K::Output, WindowPhases)> {
        let warm = self.programmed.as_deref() == Some(key);
        let (output, stats) = kernel.execute_fft(&self.accel, input)?;
        report.energy_nj += vwr2a_energy::EnergyModel::calibrated().price_fft(&stats);
        self.programmed = Some(key.to_string());
        // The engine pays its register programming on every run; splitting
        // it onto the config lane lets it overlap the previous window's
        // butterflies on the stream schedule, like the host programming
        // the engine while it finishes.
        let setup = self.accel.config().setup_cycles.min(stats.cycles);
        let phases = WindowPhases {
            stage: 0,
            config: setup,
            compute: stats.cycles - setup,
            drain: 0,
        };
        self.busy_compute += phases.compute;
        report.invocations += 1;
        if warm {
            report.warm_launches += 1;
        } else {
            report.cold_launches += 1;
        }
        report.cycles += phases.total();
        Ok((output, phases))
    }
}

impl Default for FftBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for FftBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::FftAccel
    }

    fn capabilities(&self) -> u32 {
        CAP_FFT
    }

    fn geometry(&self) -> Option<&Geometry> {
        None
    }

    fn is_resident(&self, key: &str) -> bool {
        self.programmed.as_deref() == Some(key)
    }

    fn is_warm(&self, key: &str) -> bool {
        self.is_resident(key)
    }

    fn loaded_programs(&self) -> usize {
        usize::from(self.programmed.is_some())
    }

    fn busy_compute(&self) -> u64 {
        self.busy_compute
    }

    fn window_cycles(&self, offload: &Offload) -> Option<u64> {
        let shape = offload.fft?;
        self.accel.projected_cycles(shape.points, shape.real).ok()
    }

    fn window_energy_nj(&self, offload: &Offload) -> Option<u64> {
        self.window_cycles(offload)
            .map(|cycles| vwr2a_energy::EnergyModel::calibrated().fft_window_nj(cycles))
    }

    fn exec(&mut self) -> ExecHandle<'_> {
        ExecHandle::Fft(self)
    }
}

/// The Cortex-M4 host CPU as a [`Backend`].
///
/// The host has no configuration memory: every job is "warm" (a launch
/// never pays a reload), which is exactly why tiny jobs — whose array
/// reload cost would dominate their compute — belong here.  It accepts
/// only jobs whose kernel advertises a CPU implementation
/// ([`Offload::cpu_cycles`]).
#[derive(Debug)]
pub struct CpuBackend {
    cpu: Cpu,
    sram: Sram,
    busy_compute: u64,
}

impl CpuBackend {
    /// A CPU backend with a fresh ISS and the paper's SRAM.
    pub fn new() -> Self {
        Self {
            cpu: Cpu::new(),
            sram: Sram::paper(),
            busy_compute: 0,
        }
    }

    /// Runs one window, folding launch/cycle accounting into `report`.
    fn run_into<K: Kernel>(
        &mut self,
        kernel: &K,
        input: &K::Input,
        report: &mut RunReport,
    ) -> Result<(K::Output, WindowPhases)> {
        let (output, stats) = kernel.execute_cpu(&mut self.cpu, &mut self.sram, input)?;
        report.energy_nj += vwr2a_energy::EnergyModel::calibrated().price_cpu(&stats);
        let phases = WindowPhases {
            stage: 0,
            config: 0,
            compute: stats.cycles,
            drain: 0,
        };
        self.busy_compute += stats.cycles;
        report.invocations += 1;
        report.warm_launches += 1;
        report.cycles += phases.total();
        Ok((output, phases))
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn capabilities(&self) -> u32 {
        CAP_CPU
    }

    fn geometry(&self) -> Option<&Geometry> {
        None
    }

    fn is_resident(&self, _key: &str) -> bool {
        false
    }

    fn is_warm(&self, _key: &str) -> bool {
        true
    }

    fn loaded_programs(&self) -> usize {
        0
    }

    fn busy_compute(&self) -> u64 {
        self.busy_compute
    }

    fn window_cycles(&self, offload: &Offload) -> Option<u64> {
        offload.cpu_cycles
    }

    fn window_energy_nj(&self, offload: &Offload) -> Option<u64> {
        offload
            .cpu_cycles
            .map(|cycles| vwr2a_energy::EnergyModel::calibrated().cpu_window_nj(cycles))
    }

    fn exec(&mut self) -> ExecHandle<'_> {
        ExecHandle::Cpu(self)
    }
}

/// Runs one window of `kernel` on `backend`, folding launch and cycle
/// accounting into `report` and returning the output with its per-engine
/// phase split (which the caller replays on the backend's stream
/// schedule) and the window's measured energy in nanojoules (the delta
/// each substrate's executor priced into [`RunReport::energy_nj`], which
/// the caller attributes to the landed job's route).  The generic bridge
/// between the pool's typed fan-out and the type-erased backend vector.
pub(crate) fn run_window_on<K: Kernel>(
    backend: &mut dyn Backend,
    kernel: &K,
    key: &str,
    input: &K::Input,
    report: &mut RunReport,
) -> Result<(K::Output, WindowPhases, u64)> {
    let priced_before = report.energy_nj;
    let (output, phases) = match backend.exec() {
        ExecHandle::Array(session) => session.run_into(kernel, input, report),
        ExecHandle::Fft(fft) => fft.run_into(kernel, key, input, report),
        ExecHandle::Cpu(cpu) => cpu.run_into(kernel, input, report),
    }?;
    Ok((output, phases, report.energy_nj - priced_before))
}
