//! The unified run report returned by every [`crate::Session`] execution.

use vwr2a_core::stats::time_us;
use vwr2a_core::timeline::Occupancy;
use vwr2a_core::ActivityCounters;
use vwr2a_energy::{vwr2a_energy, EnergyBreakdown};

/// Cycle, launch and activity accounting of one or more kernel invocations
/// through a [`crate::Session`].
///
/// `RunReport` replaces the per-kernel result structs of earlier revisions
/// (`KernelRun`, `FftRun`): numerical outputs travel separately as the
/// kernel's associated `Output` type, and every kernel shares this one
/// accounting type, so pipelines can sum reports across heterogeneous
/// kernels without conversion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Name of the kernel (for batches: the one kernel that ran repeatedly).
    pub kernel: String,
    /// Number of kernel invocations folded into this report (1 for
    /// [`crate::Session::run`], N for a batch of N windows).
    pub invocations: u64,
    /// Array launches that streamed configuration words (paid the
    /// configuration load).  At most 1 per program per session.
    pub cold_launches: u64,
    /// Array launches that found their program resident in the per-slot
    /// program memories and paid execution cycles only.
    pub warm_launches: u64,
    /// Programs evicted from the configuration memory during these
    /// invocations to make room for new loads (see
    /// [`crate::session::EvictionPolicy`]).  Every eviction turns the
    /// victim's next launch cold again.
    pub evictions: u64,
    /// Total cycles: DMA staging, SRF parameter writes, configuration
    /// loading (cold launches only) and array execution, summed as if the
    /// phases ran strictly one after the other (the pre-pipelining cost
    /// metric; completion-interrupt latency is not included).
    pub cycles: u64,
    /// Overlapped end-to-end latency of the run on the pipelined execution
    /// engine: staging of window *i+1* hides behind the compute of window
    /// *i*, drains run behind launches, and every completion is delivered
    /// through an interrupt.  For a single invocation (no overlap
    /// possible) this equals [`RunReport::serial_cycles`]; for a
    /// multi-window stream it is strictly smaller whenever any phase
    /// overlapped.
    pub wall_cycles: u64,
    /// Per-engine busy cycles behind [`RunReport::wall_cycles`]
    /// (configuration streaming, DMA, array compute, interrupt servicing).
    pub busy: Occupancy,
    /// Activity accumulated on the array (and its DMA) during the runs.
    pub counters: ActivityCounters,
}

impl RunReport {
    /// An empty report for the named kernel.
    pub fn new(kernel: impl Into<String>) -> Self {
        Self {
            kernel: kernel.into(),
            ..Self::default()
        }
    }

    /// Execution time in microseconds at the given clock frequency.
    pub fn time_us(&self, frequency_hz: f64) -> f64 {
        time_us(self.cycles, frequency_hz)
    }

    /// Energy of the accumulated activity under the calibrated VWR2A model.
    pub fn energy(&self) -> EnergyBreakdown {
        vwr2a_energy(&self.counters)
    }

    /// Total array launches, cold and warm.
    pub fn launches(&self) -> u64 {
        self.cold_launches + self.warm_launches
    }

    /// Cost of the run with every phase serialised *including* the
    /// completion-interrupt servicing: the sum of all engines' busy cycles
    /// ([`RunReport::busy`]).  This is what the stream would cost without
    /// the pipelined execution engine.
    pub fn serial_cycles(&self) -> u64 {
        self.busy.total()
    }

    /// Fraction of the serial cost hidden by pipelining:
    /// `(serial − wall) / serial`.  `0.0` for empty and single-window
    /// runs (no overlap possible), approaching the DMA share of the serial
    /// cost for long compute-bound streams.
    pub fn overlap_ratio(&self) -> f64 {
        vwr2a_core::timeline::overlap_ratio(self.serial_cycles(), self.wall_cycles)
    }

    /// Folds another report into this one (used by batch accumulation and
    /// by pipelines that want one aggregate report per stage).  Wall
    /// cycles add, i.e. the combined report describes the runs executed
    /// one stream after the other.
    pub fn absorb(&mut self, other: &RunReport) {
        self.invocations += other.invocations;
        self.cold_launches += other.cold_launches;
        self.warm_launches += other.warm_launches;
        self.evictions += other.evictions;
        self.cycles += other.cycles;
        self.wall_cycles += other.wall_cycles;
        self.busy += other.busy;
        self.counters += other.counters;
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} invocation(s), {} wall cycles ({} serial, {:.0} % overlapped; \
             {} cold / {} warm launches, {} evictions)",
            self.kernel,
            self.invocations,
            self.wall_cycles,
            self.serial_cycles(),
            100.0 * self.overlap_ratio(),
            self.cold_launches,
            self.warm_launches,
            self.evictions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversion_matches_core_helper() {
        let report = RunReport {
            cycles: 8_000,
            ..RunReport::new("k")
        };
        assert!((report.time_us(80.0e6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates_everything() {
        let mut a = RunReport::new("k");
        a.invocations = 1;
        a.cold_launches = 1;
        a.cycles = 100;
        a.wall_cycles = 90;
        a.busy.compute = 60;
        a.busy.dma = 40;
        a.counters.rc_alu_ops = 7;
        let mut b = RunReport::new("k");
        b.invocations = 2;
        b.warm_launches = 5;
        b.evictions = 2;
        b.cycles = 50;
        b.wall_cycles = 40;
        b.busy.compute = 30;
        b.busy.interrupt = 20;
        b.counters.rc_alu_ops = 3;
        a.absorb(&b);
        assert_eq!(a.invocations, 3);
        assert_eq!(a.launches(), 6);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.wall_cycles, 130);
        assert_eq!(a.serial_cycles(), 150);
        assert!(a.overlap_ratio() > 0.0);
        assert_eq!(a.counters.rc_alu_ops, 10);
        assert!(a.to_string().contains("3 invocation(s)"));
    }

    #[test]
    fn overlap_ratio_degenerates_to_zero() {
        let report = RunReport::new("k");
        assert_eq!(report.overlap_ratio(), 0.0);
        let mut serial = RunReport::new("k");
        serial.wall_cycles = 500;
        serial.busy.compute = 400;
        serial.busy.dma = 100;
        assert_eq!(serial.overlap_ratio(), 0.0);
    }

    #[test]
    fn energy_is_positive_for_nonzero_activity() {
        let mut report = RunReport::new("k");
        report.counters.cycles = 10_000;
        report.counters.rc_alu_ops = 5_000;
        assert!(report.energy().total_uj() > 0.0);
    }
}
