//! The unified run report returned by every [`crate::Session`] execution.

use vwr2a_core::stats::time_us;
use vwr2a_core::timeline::Occupancy;
use vwr2a_core::ActivityCounters;
use vwr2a_energy::{vwr2a_energy, EnergyBreakdown};

use crate::backend::BackendKind;

/// Cycle, launch and activity accounting of one or more kernel invocations
/// through a [`crate::Session`].
///
/// `RunReport` replaces the per-kernel result structs of earlier revisions
/// (`KernelRun`, `FftRun`): numerical outputs travel separately as the
/// kernel's associated `Output` type, and every kernel shares this one
/// accounting type, so pipelines can sum reports across heterogeneous
/// kernels without conversion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Name of the kernel (for batches: the one kernel that ran repeatedly).
    pub kernel: String,
    /// Number of kernel invocations folded into this report (1 for
    /// [`crate::Session::run`], N for a batch of N windows).
    pub invocations: u64,
    /// Array launches that streamed configuration words (paid the
    /// configuration load).  At most 1 per program per session.
    pub cold_launches: u64,
    /// Array launches that found their program resident in the per-slot
    /// program memories and paid execution cycles only.
    pub warm_launches: u64,
    /// Launches (cold or warm) the host simulator served from the array's
    /// warm-window replay cache instead of cycle-by-cycle interpretation.
    /// A host-speed statistic only: modelled cycles, counters and outputs
    /// are bit-identical either way (see `vwr2a_core::replay`).
    pub replayed: u64,
    /// Programs evicted from the configuration memory during these
    /// invocations to make room for new loads (see
    /// [`crate::session::EvictionPolicy`]).  Every eviction turns the
    /// victim's next launch cold again.
    pub evictions: u64,
    /// Speculative configuration prefetches ([`crate::Session::prefetch`])
    /// that streamed a program's words ahead of its launch: the launch
    /// itself then counted as warm, because the reload left its critical
    /// path.  `cold_launches + prefetched` is the total number of
    /// configuration reloads paid, however they were scheduled.
    pub prefetched: u64,
    /// The subset of [`RunReport::prefetched`] whose streaming finished
    /// entirely inside the array's existing compute backlog — reloads with
    /// **zero** wall-clock cost.  The remaining prefetches still overlap
    /// the first window's DMA staging, just not for free.
    pub hidden_reloads: u64,
    /// Total cycles: DMA staging, SRF parameter writes, configuration
    /// loading (cold launches and speculative prefetches — warm launches
    /// stream nothing) and array execution, summed as if the phases ran
    /// strictly one after the other (the pre-pipelining cost metric;
    /// completion-interrupt latency is not included).
    pub cycles: u64,
    /// Overlapped end-to-end latency of the run on the pipelined execution
    /// engine: staging of window *i+1* hides behind the compute of window
    /// *i*, drains run behind launches, and every completion is delivered
    /// through an interrupt.  For a single invocation (no overlap
    /// possible) this equals [`RunReport::serial_cycles`]; for a
    /// multi-window stream it is strictly smaller whenever any phase
    /// overlapped.
    pub wall_cycles: u64,
    /// Per-engine busy cycles behind [`RunReport::wall_cycles`]
    /// (configuration streaming, DMA, array compute, interrupt servicing).
    pub busy: Occupancy,
    /// Activity accumulated on the array (and its DMA) during the runs.
    pub counters: ActivityCounters,
    /// Measured energy of the runs in integer nanojoules: every
    /// invocation's activity delta priced through the calibrated
    /// [`vwr2a_energy::EnergyModel`] as it executes (plus speculative
    /// prefetch streaming — see [`RunReport::prefetch_energy_nj`]).
    /// Integer nJ so per-job energies sum *exactly* to per-backend and
    /// fleet totals; [`RunReport::energy_uj`] converts for display.
    pub energy_nj: u64,
    /// The subset of [`RunReport::energy_nj`] spent streaming speculative
    /// configuration prefetches — backend energy no single job's route
    /// accounts for (`energy_nj - prefetch_energy_nj` is the job-attributed
    /// part).
    pub prefetch_energy_nj: u64,
}

impl RunReport {
    /// An empty report for the named kernel.
    pub fn new(kernel: impl Into<String>) -> Self {
        Self {
            kernel: kernel.into(),
            ..Self::default()
        }
    }

    /// Execution time in microseconds at the given clock frequency.
    pub fn time_us(&self, frequency_hz: f64) -> f64 {
        time_us(self.cycles, frequency_hz)
    }

    /// Energy of the accumulated activity under the calibrated VWR2A model.
    pub fn energy(&self) -> EnergyBreakdown {
        vwr2a_energy(&self.counters)
    }

    /// Measured energy in microjoules ([`RunReport::energy_nj`] scaled for
    /// display).
    pub fn energy_uj(&self) -> f64 {
        self.energy_nj as f64 / 1e3
    }

    /// Total array launches, cold and warm.
    pub fn launches(&self) -> u64 {
        self.cold_launches + self.warm_launches
    }

    /// Cost of the run with every phase serialised *including* the
    /// completion-interrupt servicing: the sum of all engines' busy cycles
    /// ([`RunReport::busy`]).  This is what the stream would cost without
    /// the pipelined execution engine.
    pub fn serial_cycles(&self) -> u64 {
        self.busy.total()
    }

    /// Fraction of the serial cost hidden by pipelining:
    /// `(serial − wall) / serial`.  `0.0` for empty and single-window
    /// runs (no overlap possible), approaching the DMA share of the serial
    /// cost for long compute-bound streams.
    pub fn overlap_ratio(&self) -> f64 {
        vwr2a_core::timeline::overlap_ratio(self.serial_cycles(), self.wall_cycles)
    }

    /// Folds another report into this one (used by batch accumulation and
    /// by pipelines that want one aggregate report per stage).  Wall
    /// cycles add, i.e. the combined report describes the runs executed
    /// one stream after the other.
    pub fn absorb(&mut self, other: &RunReport) {
        self.invocations += other.invocations;
        self.cold_launches += other.cold_launches;
        self.warm_launches += other.warm_launches;
        self.replayed += other.replayed;
        self.evictions += other.evictions;
        self.prefetched += other.prefetched;
        self.hidden_reloads += other.hidden_reloads;
        self.cycles += other.cycles;
        self.wall_cycles += other.wall_cycles;
        self.busy += other.busy;
        self.counters += other.counters;
        self.energy_nj += other.energy_nj;
        self.prefetch_energy_nj += other.prefetch_energy_nj;
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} invocation(s), {} wall cycles ({} serial, {:.0} % overlapped; \
             {} cold / {} warm launches, {} replayed, {} prefetched, {} evictions)",
            self.kernel,
            self.invocations,
            self.wall_cycles,
            self.serial_cycles(),
            100.0 * self.overlap_ratio(),
            self.cold_launches,
            self.warm_launches,
            self.replayed,
            self.prefetched,
            self.evictions
        )
    }
}

/// Accounting of one backend (a CGRA array [`crate::Session`], the FFT
/// engine, or the host CPU) inside a [`crate::pool::Pool`] fan-out.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ArrayReport {
    /// Index of the backend in the pool.
    pub array: usize,
    /// What kind of execution substrate this backend is — the per-backend
    /// attribution key heterogeneous fleets aggregate by
    /// ([`FleetReport::per_kind`]).
    pub kind: BackendKind,
    /// Jobs the placement strategy routed to this backend.
    pub jobs: u64,
    /// The backend's aggregated run accounting: `wall_cycles`/`busy` come
    /// from replaying the backend's own [`crate::pipeline::StreamSchedule`],
    /// so they describe the backend's *local* pipelined timeline.
    pub report: RunReport,
}

/// Which backend one fanned-out job actually landed on — recorded per job
/// in [`FleetReport::routes`], so equivalence tests can replay each job
/// against the serial model of the backend that served it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRoute {
    /// The job's submission index ([`crate::pool::JobView::index`]; for
    /// accumulated [`crate::pool::Pool::stats`], offset so indices keep
    /// counting across waves).
    pub job: usize,
    /// Index of the backend that executed the job's windows.
    pub backend: usize,
    /// The executing backend's kind.
    pub kind: BackendKind,
    /// Measured energy of the job's executed windows in nanojoules — the
    /// landed backend's actual activity priced through the calibrated
    /// [`vwr2a_energy::EnergyModel`] (counters on arrays, run statistics
    /// on the engine and the CPU).  Summing routes per kind recovers each
    /// [`BackendKindStats`]'s job-attributed energy exactly.
    pub energy_nj: u64,
}

impl JobRoute {
    /// The job's measured energy in microjoules ([`JobRoute::energy_nj`]
    /// scaled for display).
    pub fn energy_uj(&self) -> f64 {
        self.energy_nj as f64 / 1e3
    }
}

/// Per-kind aggregate over a [`FleetReport`]'s backends — the
/// heterogeneous fleet's attribution row (how much of the work each
/// substrate absorbed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackendKindStats {
    /// The backend kind the row aggregates.
    pub kind: BackendKind,
    /// Number of backends of this kind in the fleet.
    pub backends: usize,
    /// Jobs routed to backends of this kind.
    pub jobs: u64,
    /// Kernel invocations (windows) executed on this kind.
    pub invocations: u64,
    /// Serial phase-sum cycles spent on this kind.
    pub cycles: u64,
    /// Summed per-engine busy cycles on this kind.
    pub busy: Occupancy,
    /// Largest per-backend wall clock among this kind's backends.
    pub wall_cycles: u64,
    /// Measured energy spent on this kind in nanojoules
    /// ([`RunReport::energy_nj`] summed over the kind's backends —
    /// includes speculative prefetch streaming).
    pub energy_nj: u64,
    /// The prefetch-streaming subset of [`BackendKindStats::energy_nj`]
    /// (energy not attributed to any job's route).
    pub prefetch_energy_nj: u64,
}

impl BackendKindStats {
    /// The kind's measured energy in microjoules
    /// ([`BackendKindStats::energy_nj`] scaled for display).
    pub fn energy_uj(&self) -> f64 {
        self.energy_nj as f64 / 1e3
    }
}

/// The merged fleet-level accounting of a [`crate::pool::Pool`] fan-out:
/// one [`ArrayReport`] per array, with the fleet wall clock, occupancy and
/// cold-reload totals derived across them.
///
/// Arrays run concurrently, so [`FleetReport::wall_cycles`] is the *maximum*
/// of the per-array wall clocks (the fleet is done when its slowest array
/// is), while [`FleetReport::busy`] *sums* the per-array busy cycles — the
/// fleet does all of its arrays' work, however the placement distributed
/// it.  Together they give the work-conservation invariant the pool's
/// property tests enforce: `wall_cycles() >=` every array's wall clock, and
/// `busy().total()` equals the sum of the per-array spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetReport {
    /// Total jobs fanned out (a job is one `(kernel, windows)` workload).
    pub jobs: u64,
    /// Per-backend accounting, indexed by backend.
    pub arrays: Vec<ArrayReport>,
    /// Which backend each job landed on, in execution order — the
    /// per-job routing record heterogeneous equivalence tests replay.
    pub routes: Vec<JobRoute>,
}

impl FleetReport {
    /// An empty report over `arrays` CGRA-array backends (the homogeneous
    /// fleet; see [`FleetReport::for_kinds`] for mixed ones).
    pub fn new(arrays: usize) -> Self {
        Self::for_kinds(&vec![BackendKind::Array; arrays])
    }

    /// An empty report over one backend per entry of `kinds`, named
    /// `{kind}-{index}`.
    pub fn for_kinds(kinds: &[BackendKind]) -> Self {
        Self {
            jobs: 0,
            arrays: kinds
                .iter()
                .enumerate()
                .map(|(array, &kind)| ArrayReport {
                    array,
                    kind,
                    jobs: 0,
                    report: RunReport::new(format!("{}-{array}", kind.label())),
                })
                .collect(),
            routes: Vec::new(),
        }
    }

    /// Per-kind attribution rows (jobs, invocations, cycles, busy split,
    /// wall clock), in [`BackendKind`] declaration order, covering only
    /// the kinds present in the fleet.
    pub fn per_kind(&self) -> Vec<BackendKindStats> {
        [BackendKind::Array, BackendKind::FftAccel, BackendKind::Cpu]
            .into_iter()
            .filter_map(|kind| {
                let mut stats = BackendKindStats {
                    kind,
                    backends: 0,
                    jobs: 0,
                    invocations: 0,
                    cycles: 0,
                    busy: Occupancy::default(),
                    wall_cycles: 0,
                    energy_nj: 0,
                    prefetch_energy_nj: 0,
                };
                for array in self.arrays.iter().filter(|a| a.kind == kind) {
                    stats.backends += 1;
                    stats.jobs += array.jobs;
                    stats.invocations += array.report.invocations;
                    stats.cycles += array.report.cycles;
                    stats.busy += array.report.busy;
                    stats.wall_cycles = stats.wall_cycles.max(array.report.wall_cycles);
                    stats.energy_nj += array.report.energy_nj;
                    stats.prefetch_energy_nj += array.report.prefetch_energy_nj;
                }
                (stats.backends > 0).then_some(stats)
            })
            .collect()
    }

    /// Fleet wall clock: the largest per-array wall clock, because the
    /// arrays run concurrently.
    pub fn wall_cycles(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.report.wall_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Summed per-engine busy cycles across all arrays.
    pub fn busy(&self) -> Occupancy {
        self.arrays
            .iter()
            .map(|a| a.report.busy)
            .fold(Occupancy::default(), |acc, b| acc + b)
    }

    /// Cost of the whole fan-out executed strictly serially on one engine
    /// lane: the sum of every array's busy cycles.
    pub fn serial_cycles(&self) -> u64 {
        self.busy().total()
    }

    /// Total kernel invocations (windows) across the fleet.
    pub fn invocations(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.invocations).sum()
    }

    /// Launches that had to stream configuration words — the pool-level
    /// *cold reload* count placement strategies compete on.  Under
    /// residency-aware placement a program goes cold once per array it is
    /// first routed to (plus once per eviction); placement that ignores
    /// residency pays it over and over.
    pub fn cold_reloads(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.cold_launches).sum()
    }

    /// Warm launches across the fleet.
    pub fn warm_launches(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.warm_launches).sum()
    }

    /// Launches served from the arrays' warm-window replay caches
    /// ([`RunReport::replayed`]) — a host simulation speed statistic; the
    /// modelled cycles are identical with replay disabled.
    pub fn replayed(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.replayed).sum()
    }

    /// Configuration reloads streamed speculatively, ahead of the launch
    /// that needed them ([`RunReport::prefetched`]): those launches counted
    /// warm, so `cold_reloads() + prefetched()` is the total reloads paid
    /// however they were scheduled — what a prefetch-less scheduler would
    /// have paid as cold reloads on the critical path.
    pub fn prefetched(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.prefetched).sum()
    }

    /// Prefetches that streamed entirely inside their array's existing
    /// compute backlog — reloads hidden at zero wall-clock cost
    /// ([`RunReport::hidden_reloads`]).
    pub fn hidden_reloads(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.hidden_reloads).sum()
    }

    /// Programs evicted across the fleet to make room for new loads.
    pub fn evictions(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.evictions).sum()
    }

    /// Total measured energy across the fleet in nanojoules
    /// ([`RunReport::energy_nj`] summed over every backend): the
    /// job-attributed window energies of [`FleetReport::routes`] plus
    /// speculative prefetch streaming.
    pub fn energy_nj(&self) -> u64 {
        self.arrays.iter().map(|a| a.report.energy_nj).sum()
    }

    /// Fleet energy in microjoules ([`FleetReport::energy_nj`] scaled for
    /// display).
    pub fn energy_uj(&self) -> f64 {
        self.energy_nj() as f64 / 1e3
    }

    /// Fleet compute occupancy in `[0, 1]`: the fraction of the fleet's
    /// array-cycles (`arrays × wall_cycles()`) spent computing.  Higher is
    /// better — cold configuration streaming, DMA stalls and load imbalance
    /// all push it down.  `0.0` for an empty or idle fleet.
    pub fn occupancy(&self) -> f64 {
        let wall = self.wall_cycles();
        if wall == 0 || self.arrays.is_empty() {
            return 0.0;
        }
        self.busy().compute as f64 / (wall as f64 * self.arrays.len() as f64)
    }

    /// Folds another fleet report into this one, array by array (used by
    /// [`crate::pool::Pool::stats`] to accumulate waves run one after the
    /// other; per-array wall clocks add, so the combined report describes
    /// sequential waves).
    ///
    /// # Panics
    ///
    /// Panics if the two reports describe pools of different sizes.
    pub fn absorb(&mut self, other: &FleetReport) {
        assert_eq!(
            self.arrays.len(),
            other.arrays.len(),
            "fleet reports of different pool sizes cannot be merged"
        );
        // Later waves' job indices restart at 0; offset their routes so
        // the accumulated record keeps one monotone index space.
        let base = self.jobs as usize;
        self.routes.extend(other.routes.iter().map(|r| JobRoute {
            job: r.job + base,
            ..*r
        }));
        self.jobs += other.jobs;
        for (mine, theirs) in self.arrays.iter_mut().zip(&other.arrays) {
            mine.jobs += theirs.jobs;
            mine.report.absorb(&theirs.report);
        }
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet: {} job(s) / {} invocation(s) over {} array(s), {} wall cycles, \
             {:.0} % occupancy, {:.2} uJ ({} cold reloads / {} warm launches, \
             {} prefetched of which {} hidden, {} evictions)",
            self.jobs,
            self.invocations(),
            self.arrays.len(),
            self.wall_cycles(),
            100.0 * self.occupancy(),
            self.energy_uj(),
            self.cold_reloads(),
            self.warm_launches(),
            self.prefetched(),
            self.hidden_reloads(),
            self.evictions()
        )?;
        // Heterogeneous fleets get the per-kind attribution inline.
        if self.arrays.iter().any(|a| a.kind != BackendKind::Array) {
            for stats in self.per_kind() {
                write!(
                    f,
                    "; {} x{}: {} job(s), {} busy cycles, {:.2} uJ",
                    stats.kind,
                    stats.backends,
                    stats.jobs,
                    stats.busy.total(),
                    stats.energy_uj()
                )?;
            }
        }
        Ok(())
    }
}

/// Per-job latency decomposition recorded by the serving layer
/// ([`crate::serve::Server`]) — the operator-facing view of one job's trip
/// through the admission queue and an array's pipelined schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLatency {
    /// Submission index of the job in the arrival stream.
    pub job: usize,
    /// Tenant that submitted the job.
    pub tenant: crate::serve::TenantId,
    /// Cycles from the job's arrival to its first window starting to
    /// compute — admission queueing plus any backlog and reload ahead of
    /// it on the chosen array.
    pub queue_cycles: u64,
    /// Cycles from the first window's compute start to the last window's
    /// completion interrupt.
    pub service_cycles: u64,
    /// End-to-end latency: `queue_cycles + service_cycles`.
    pub total: u64,
    /// `true` if the job completed by its deadline — vacuously `true` for
    /// jobs submitted without one.
    pub deadline_met: bool,
}

/// Per-tenant aggregate derived from a [`ServeReport`]'s job latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: crate::serve::TenantId,
    /// Jobs the tenant completed.
    pub jobs: u64,
    /// Summed end-to-end latency over the tenant's jobs.
    pub total_cycles: u64,
    /// The tenant's jobs that missed their deadline.
    pub deadline_misses: u64,
}

/// What the serving layer's whole-queue lookahead planner did during one
/// [`crate::serve::Server`] run.  All zeros when lookahead planning is
/// disabled ([`crate::serve::Server::with_lookahead`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlannerStats {
    /// Affinity runs formed: times the planner dispatched two or more
    /// queued jobs sharing one cache key consecutively onto the backend
    /// holding (or about to hold) their program.
    pub affinity_runs: u64,
    /// Jobs that rode an affinity run behind its policy-selected head
    /// (the head itself is not counted — it was dispatched on the
    /// scheduling policy's own authority).
    pub batched_jobs: u64,
    /// Prefetches the planner staged for jobs still waiting in a run
    /// queue, overlapping the reload with the compute of the jobs ahead.
    pub planned_prefetches: u64,
    /// Evictions the queue-derived needed-soon shield redirected away
    /// from a program a queued job needs (summed over the fleet's array
    /// sessions; see [`crate::Session::evictions_averted`]).
    pub evictions_averted: u64,
}

impl std::fmt::Display for PlannerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} affinity run(s) ({} batched job(s)), {} planned prefetch(es), \
             {} eviction(s) averted",
            self.affinity_runs, self.batched_jobs, self.planned_prefetches, self.evictions_averted
        )
    }
}

/// What one [`crate::serve::Server`] run reports: the underlying fleet
/// accounting plus the serving layer's operator numbers — per-job
/// latencies (in submission order), tail percentiles, deadline misses,
/// the work-stealing count and the lookahead planner's ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// The run's fleet-level accounting (per-array wall/busy cycles,
    /// reload and prefetch counters), exactly as a [`FleetReport`] wave.
    pub fleet: FleetReport,
    /// Per-job latency decompositions, ordered by submission index.
    pub latencies: Vec<JobLatency>,
    /// Queued jobs the stealing pass re-routed away from a drifted-ahead
    /// array before they materialised.
    pub steals: u64,
    /// The lookahead planner's ledger (all zeros when planning is off).
    pub plan: PlannerStats,
}

impl ServeReport {
    /// The `p`-th percentile of end-to-end job latency, by the
    /// *nearest-rank* definition: the smallest recorded total such that at
    /// least `p` percent of jobs finished within it.  `0` when no job ran.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.latencies.is_empty() {
            return 0;
        }
        let mut totals: Vec<u64> = self.latencies.iter().map(|l| l.total).collect();
        totals.sort_unstable();
        let rank = ((p / 100.0) * totals.len() as f64).ceil() as usize;
        totals[rank.clamp(1, totals.len()) - 1]
    }

    /// Median end-to-end latency ([`ServeReport::percentile`] at 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile end-to-end latency.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile end-to-end latency — the tail number an operator
    /// watches under load.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Jobs that blew their deadline (jobs without one never miss).
    pub fn deadline_misses(&self) -> u64 {
        self.latencies.iter().filter(|l| !l.deadline_met).count() as u64
    }

    /// Per-tenant aggregates, sorted by tenant id (deterministic table
    /// order for benches and logs).
    pub fn tenants(&self) -> Vec<TenantStats> {
        let mut stats: Vec<TenantStats> = Vec::new();
        for latency in &self.latencies {
            match stats.iter_mut().find(|s| s.tenant == latency.tenant) {
                Some(s) => {
                    s.jobs += 1;
                    s.total_cycles += latency.total;
                    s.deadline_misses += u64::from(!latency.deadline_met);
                }
                None => stats.push(TenantStats {
                    tenant: latency.tenant,
                    jobs: 1,
                    total_cycles: latency.total,
                    deadline_misses: u64::from(!latency.deadline_met),
                }),
            }
        }
        stats.sort_unstable_by_key(|s| s.tenant);
        stats
    }
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serve: {} job(s) from {} tenant(s), p50/p95/p99 latency {}/{}/{} cycles, \
             {} deadline miss(es), {} steal(s), {:.2} uJ; plan: {}; {}",
            self.latencies.len(),
            self.tenants().len(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.deadline_misses(),
            self.steals,
            self.fleet.energy_uj(),
            self.plan,
            self.fleet
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversion_matches_core_helper() {
        let report = RunReport {
            cycles: 8_000,
            ..RunReport::new("k")
        };
        assert!((report.time_us(80.0e6) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates_everything() {
        let mut a = RunReport::new("k");
        a.invocations = 1;
        a.cold_launches = 1;
        a.cycles = 100;
        a.wall_cycles = 90;
        a.busy.compute = 60;
        a.busy.dma = 40;
        a.counters.rc_alu_ops = 7;
        a.prefetched = 1;
        a.energy_nj = 120;
        a.prefetch_energy_nj = 20;
        let mut b = RunReport::new("k");
        b.invocations = 2;
        b.warm_launches = 5;
        b.replayed = 4;
        b.evictions = 2;
        b.prefetched = 2;
        b.hidden_reloads = 1;
        b.cycles = 50;
        b.wall_cycles = 40;
        b.busy.compute = 30;
        b.busy.interrupt = 20;
        b.counters.rc_alu_ops = 3;
        b.energy_nj = 80;
        a.absorb(&b);
        assert_eq!(a.energy_nj, 200);
        assert_eq!(a.prefetch_energy_nj, 20);
        assert!((a.energy_uj() - 0.2).abs() < 1e-12);
        assert_eq!(a.invocations, 3);
        assert_eq!(a.launches(), 6);
        assert_eq!(a.replayed, 4);
        assert_eq!(a.evictions, 2);
        assert_eq!(a.prefetched, 3);
        assert_eq!(a.hidden_reloads, 1);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.wall_cycles, 130);
        assert_eq!(a.serial_cycles(), 150);
        assert!(a.overlap_ratio() > 0.0);
        assert_eq!(a.counters.rc_alu_ops, 10);
        assert!(a.to_string().contains("3 invocation(s)"));
    }

    #[test]
    fn overlap_ratio_degenerates_to_zero() {
        // Empty stream: nothing ran, nothing overlapped — and no NaN from
        // the 0/0.
        let report = RunReport::new("k");
        assert_eq!(report.serial_cycles(), 0);
        assert_eq!(report.overlap_ratio(), 0.0);
        // Single window: the wall clock equals the serial schedule.
        let mut serial = RunReport::new("k");
        serial.wall_cycles = 500;
        serial.busy.compute = 400;
        serial.busy.dma = 100;
        assert_eq!(serial.overlap_ratio(), 0.0);
        // Sequential waves folded by `absorb` can push the summed wall
        // clock past the summed serial cost; the ratio stays at zero (one
        // definition in `vwr2a_core::timeline::overlap_ratio`, with a
        // saturating numerator, covers every caller).
        let mut folded = RunReport::new("k");
        folded.wall_cycles = 900;
        folded.busy.compute = 400;
        assert_eq!(folded.overlap_ratio(), 0.0);
        // And the ratio never exceeds 1.
        let mut wide = RunReport::new("k");
        wide.wall_cycles = 1;
        wide.busy.compute = 1_000_000;
        assert!((0.0..=1.0).contains(&wide.overlap_ratio()));
    }

    fn array_report(array: usize, wall: u64, compute: u64, dma: u64, cold: u64) -> ArrayReport {
        let mut report = RunReport::new(format!("array-{array}"));
        report.invocations = 2;
        report.cold_launches = cold;
        report.warm_launches = 2 - cold.min(2);
        report.wall_cycles = wall;
        report.busy.compute = compute;
        report.busy.dma = dma;
        report.energy_nj = 10 * compute;
        ArrayReport {
            array,
            kind: BackendKind::Array,
            jobs: 1,
            report,
        }
    }

    #[test]
    fn per_kind_attribution_splits_a_mixed_fleet() {
        let mut fleet = FleetReport::for_kinds(&[
            BackendKind::Array,
            BackendKind::Array,
            BackendKind::FftAccel,
        ]);
        fleet.jobs = 3;
        fleet.arrays[0] = array_report(0, 1_000, 700, 100, 1);
        fleet.arrays[1] = array_report(1, 800, 600, 50, 0);
        fleet.arrays[2].kind = BackendKind::FftAccel;
        fleet.arrays[2].jobs = 1;
        fleet.arrays[2].report.invocations = 4;
        fleet.arrays[2].report.cycles = 3_000;
        fleet.arrays[2].report.wall_cycles = 2_500;
        fleet.arrays[2].report.busy.compute = 3_000;
        fleet.arrays[2].report.energy_nj = 4_200;
        fleet.routes = vec![
            JobRoute {
                job: 0,
                backend: 0,
                kind: BackendKind::Array,
                energy_nj: 7_000,
            },
            JobRoute {
                job: 1,
                backend: 1,
                kind: BackendKind::Array,
                energy_nj: 6_000,
            },
            JobRoute {
                job: 2,
                backend: 2,
                kind: BackendKind::FftAccel,
                energy_nj: 4_200,
            },
        ];
        let kinds = fleet.per_kind();
        assert_eq!(kinds.len(), 2, "only present kinds are listed");
        assert_eq!(kinds[0].kind, BackendKind::Array);
        assert_eq!(kinds[0].backends, 2);
        assert_eq!(kinds[0].jobs, 2);
        assert_eq!(kinds[0].busy.compute, 1_300);
        assert_eq!(kinds[0].wall_cycles, 1_000);
        // Per-kind energy is the sum of the kind's backend reports — and
        // with no prefetch streaming, exactly the kind's route energies.
        assert_eq!(kinds[0].energy_nj, 13_000);
        assert_eq!(kinds[0].prefetch_energy_nj, 0);
        assert!((kinds[0].energy_uj() - 13.0).abs() < 1e-12);
        assert_eq!(kinds[1].kind, BackendKind::FftAccel);
        assert_eq!(kinds[1].invocations, 4);
        assert_eq!(kinds[1].energy_nj, 4_200);
        assert_eq!(fleet.energy_nj(), 17_200);
        assert!(fleet.to_string().contains("fft x1"));
        assert!(fleet.to_string().contains("uJ"));

        // Absorbing a second wave offsets its routes past this one's jobs.
        let mut next = FleetReport::for_kinds(&[
            BackendKind::Array,
            BackendKind::Array,
            BackendKind::FftAccel,
        ]);
        next.jobs = 2;
        next.routes = vec![
            JobRoute {
                job: 0,
                backend: 2,
                kind: BackendKind::FftAccel,
                energy_nj: 0,
            },
            JobRoute {
                job: 1,
                backend: 0,
                kind: BackendKind::Array,
                energy_nj: 0,
            },
        ];
        fleet.absorb(&next);
        assert_eq!(fleet.jobs, 5);
        assert_eq!(fleet.routes.len(), 5);
        assert_eq!(fleet.routes[3].job, 3);
        assert_eq!(fleet.routes[4].job, 4);
        assert_eq!(fleet.routes[3].backend, 2);
    }

    #[test]
    fn fleet_report_merges_concurrent_arrays() {
        let mut fleet = FleetReport::new(2);
        assert_eq!(fleet.wall_cycles(), 0);
        assert_eq!(fleet.occupancy(), 0.0);
        fleet.jobs = 2;
        fleet.arrays[0] = array_report(0, 1_000, 700, 100, 1);
        fleet.arrays[1] = array_report(1, 800, 600, 50, 2);
        fleet.arrays[0].report.prefetched = 2;
        fleet.arrays[0].report.hidden_reloads = 1;
        fleet.arrays[1].report.prefetched = 1;
        // Concurrency: the fleet finishes with its slowest array...
        assert_eq!(fleet.wall_cycles(), 1_000);
        // ...but does the sum of all arrays' work.
        assert_eq!(fleet.busy().compute, 1_300);
        assert_eq!(fleet.serial_cycles(), 1_450);
        assert_eq!(fleet.invocations(), 4);
        assert_eq!(fleet.cold_reloads(), 3);
        assert_eq!(fleet.warm_launches(), 1);
        assert_eq!(fleet.prefetched(), 3);
        assert_eq!(fleet.hidden_reloads(), 1);
        // Occupancy: 1300 compute cycles of 2 × 1000 array-cycles.
        assert!((fleet.occupancy() - 0.65).abs() < 1e-12);
        assert!(fleet.to_string().contains("2 array(s)"));
    }

    #[test]
    fn fleet_absorb_accumulates_waves_per_array() {
        let mut a = FleetReport::new(2);
        a.jobs = 1;
        a.arrays[0] = array_report(0, 500, 400, 50, 1);
        let mut b = FleetReport::new(2);
        b.jobs = 3;
        b.arrays[1] = array_report(1, 900, 800, 0, 0);
        a.absorb(&b);
        assert_eq!(a.jobs, 4);
        assert_eq!(a.arrays[0].report.wall_cycles, 500);
        assert_eq!(a.arrays[1].report.wall_cycles, 900);
        assert_eq!(a.wall_cycles(), 900);
        assert_eq!(a.busy().compute, 1_200);
    }

    #[test]
    #[should_panic(expected = "different pool sizes")]
    fn fleet_absorb_rejects_mismatched_pools() {
        FleetReport::new(2).absorb(&FleetReport::new(3));
    }

    #[test]
    fn energy_is_positive_for_nonzero_activity() {
        let mut report = RunReport::new("k");
        report.counters.cycles = 10_000;
        report.counters.rc_alu_ops = 5_000;
        assert!(report.energy().total_uj() > 0.0);
    }

    fn latency(job: usize, total: u64, deadline_met: bool) -> JobLatency {
        JobLatency {
            job,
            tenant: (job % 2) as crate::serve::TenantId,
            queue_cycles: total / 2,
            service_cycles: total - total / 2,
            total,
            deadline_met,
        }
    }

    fn serve_report(totals: &[u64]) -> ServeReport {
        ServeReport {
            fleet: FleetReport::new(1),
            latencies: totals
                .iter()
                .enumerate()
                .map(|(job, &t)| latency(job, t, true))
                .collect(),
            steals: 0,
            plan: PlannerStats::default(),
        }
    }

    #[test]
    fn percentiles_of_an_empty_run_are_zero() {
        let report = serve_report(&[]);
        assert_eq!(report.p50(), 0);
        assert_eq!(report.p95(), 0);
        assert_eq!(report.p99(), 0);
        assert_eq!(report.deadline_misses(), 0);
        assert!(report.tenants().is_empty());
    }

    #[test]
    fn percentiles_of_a_single_job_are_its_latency() {
        let report = serve_report(&[420]);
        assert_eq!(report.p50(), 420);
        assert_eq!(report.p95(), 420);
        assert_eq!(report.p99(), 420);
    }

    #[test]
    fn percentiles_use_nearest_rank_and_survive_ties() {
        // 10 samples: nearest-rank p50 is the 5th smallest, p95/p99 the
        // 10th.  Ties collapse to the same value without interpolation —
        // every percentile is a latency some job actually saw.
        let report = serve_report(&[100, 100, 100, 200, 200, 300, 300, 300, 300, 900]);
        assert_eq!(report.p50(), 200);
        assert_eq!(report.p95(), 900);
        assert_eq!(report.p99(), 900);
        assert_eq!(report.percentile(0.0), 100, "p0 clamps to the minimum");
        assert_eq!(report.percentile(100.0), 900);
        // All-ties degenerate case.
        let flat = serve_report(&[7, 7, 7, 7]);
        assert_eq!(flat.p50(), 7);
        assert_eq!(flat.p99(), 7);
    }

    #[test]
    fn deadline_misses_and_tenant_totals_add_up() {
        let mut report = serve_report(&[100, 200, 300, 400]);
        report.latencies[1].deadline_met = false;
        report.latencies[3].deadline_met = false;
        assert_eq!(report.deadline_misses(), 2);
        let tenants = report.tenants();
        // Jobs alternate tenants 0 and 1 (see `latency`).
        assert_eq!(tenants.len(), 2);
        assert_eq!(tenants[0].tenant, 0);
        assert_eq!(tenants[0].jobs, 2);
        assert_eq!(tenants[0].total_cycles, 400);
        assert_eq!(tenants[0].deadline_misses, 0);
        assert_eq!(tenants[1].tenant, 1);
        assert_eq!(tenants[1].jobs, 2);
        assert_eq!(tenants[1].total_cycles, 600);
        assert_eq!(tenants[1].deadline_misses, 2);
        assert!(report.to_string().contains("2 deadline miss(es)"));
    }
}
