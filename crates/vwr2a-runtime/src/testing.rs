//! Minimal example kernels used by the runtime's own tests and doc
//! examples.
//!
//! Real kernel mappings live in `vwr2a-kernels`; [`ScaleKernel`] exists so
//! the runtime crate can demonstrate and test the [`crate::Session`]
//! machinery (cold/warm launches, batching, reports) without depending on
//! them.  [`BakedScaleKernel`] bakes its factor into the program as an
//! immediate — every factor is a distinct configuration-memory program, so
//! it exercises capacity pressure, eviction and stale-handle safety: if a
//! stale program were ever aliased, the output would be numerically wrong.

use vwr2a_core::builder::ColumnProgramBuilder;
use vwr2a_core::geometry::{Geometry, VwrId};
use vwr2a_core::isa::{
    LcuCond, LcuInstr, LcuSrc, LsuAddr, LsuInstr, MxcuInstr, RcDst, RcInstr, RcOpcode, RcSrc,
};
use vwr2a_core::program::KernelProgram;

use vwr2a_core::Vwr2a;

use crate::error::{Result, RuntimeError};
use crate::session::{Kernel, LaunchCtx, Resources, Session};

/// Builds `arrays` independent sessions whose configuration memories hold
/// exactly `config_words` words (paper geometry otherwise) — the shared
/// fixture of the capacity-pressure and pool tests, benches and examples:
/// a working set larger than `config_words` forces evictions on one array,
/// while a fleet of such arrays can still hold it collectively.
///
/// # Panics
///
/// Panics if the resulting geometry is rejected by the simulator.
pub fn constrained_sessions(arrays: usize, config_words: usize) -> Vec<Session> {
    let mut geometry = Geometry::paper();
    geometry.config_words = config_words;
    (0..arrays)
        .map(|_| {
            Session::with_accelerator(
                Vwr2a::with_geometry(geometry).expect("valid constrained geometry"),
            )
        })
        .collect()
}

/// Words per SPM line / VWR of the paper geometry.
const LINE: usize = 128;
/// SPM line holding the staged input.
const IN_LINE: usize = 0;
/// SPM line receiving the result.
const OUT_LINE: usize = 1;

/// Builds the shared one-column scale program: load the input line into
/// VWR A, multiply every word by `factor_src` into VWR C, store the result
/// line.  When `prefetch_srf` is set, the factor is first copied from that
/// SRF entry into every RC's `Reg(0)` (one RC at a time: single SRF port).
fn scale_program(
    geometry: &Geometry,
    name: &str,
    prefetch_srf: Option<u8>,
    factor_src: RcSrc,
) -> Result<KernelProgram> {
    let mut b = ColumnProgramBuilder::new(geometry.rcs_per_column);
    b.push(b.row().lsu(LsuInstr::LoadVwr {
        vwr: VwrId::A,
        line: LsuAddr::Imm(IN_LINE as u16),
    }));
    b.push(
        b.row()
            .lcu(LcuInstr::Li { r: 0, value: 0 })
            .mxcu(MxcuInstr::SetIdx(0)),
    );
    if let Some(srf) = prefetch_srf {
        for rc in 0..geometry.rcs_per_column {
            b.push(b.row().rc(rc, RcInstr::mov(RcDst::Reg(0), RcSrc::Srf(srf))));
        }
    }
    let top = b.new_label();
    b.bind_label(top);
    b.push(
        b.row()
            .lcu(LcuInstr::Add {
                r: 0,
                src: LcuSrc::Imm(1),
            })
            .mxcu(MxcuInstr::AddIdx(1))
            .rc_all(RcInstr::new(
                RcOpcode::Mul,
                RcDst::Vwr(VwrId::C),
                RcSrc::Vwr(VwrId::A),
                factor_src,
            )),
    );
    b.push_branch(
        b.row(),
        LcuCond::Lt,
        0,
        LcuSrc::Imm(geometry.slice_words() as i32),
        top,
    );
    b.push(b.row().lsu(LsuInstr::StoreVwr {
        vwr: VwrId::C,
        line: LsuAddr::Imm(OUT_LINE as u16),
    }));
    b.push_exit();
    Ok(KernelProgram::new(name, vec![b.build()?])?)
}

/// Stages one padded input line, launches, and reads the result line back,
/// truncated to the input length — the staging shared by both scale
/// kernels.
fn scale_execute(ctx: &mut LaunchCtx<'_>, name: &str, input: &[i32]) -> Result<Vec<i32>> {
    if input.is_empty() || input.len() > LINE {
        return Err(RuntimeError::invalid_input(format!(
            "{name} kernel takes 1..={LINE} words, got {}",
            input.len()
        )));
    }
    let mut line = input.to_vec();
    line.resize(LINE, 0);
    ctx.dma_in(&line, IN_LINE * LINE)?;
    ctx.launch()?;
    let mut out = ctx.dma_out(OUT_LINE * LINE, LINE)?;
    out.truncate(input.len());
    Ok(out)
}

/// Multiplies up to one VWR line of words by an integer factor read from
/// `SRF[0]`.
#[derive(Debug, Clone)]
pub struct ScaleKernel {
    factor: i32,
}

impl ScaleKernel {
    /// Creates a kernel scaling by `factor`.
    pub fn new(factor: i32) -> Self {
        Self { factor }
    }
}

impl Kernel for ScaleKernel {
    type Input = [i32];
    type Output = Vec<i32>;

    fn name(&self) -> &str {
        "scale"
    }

    fn resources(&self) -> Resources {
        Resources {
            columns: 1,
            spm_lines: 2,
            srf_slots: 1,
        }
    }

    fn program(&self, geometry: &Geometry) -> Result<KernelProgram> {
        // Fetch the factor from SRF[0] once per RC, multiply by Reg(0).
        scale_program(geometry, "scale", Some(0), RcSrc::Reg(0))
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> Result<Vec<i32>> {
        ctx.write_param(0, 0, self.factor)?;
        scale_execute(ctx, "scale", input)
    }
}

/// Multiplies up to one VWR line of words by an integer factor baked into
/// the program as an immediate.
///
/// Unlike [`ScaleKernel`] (one shared program, factor passed through the
/// SRF), every factor here produces a *different* program with its own
/// [`crate::Kernel::cache_key`] — the runtime analogue of FIR kernels with
/// different baked-in taps.  A handful of these saturate a small
/// configuration memory, which makes the kernel the workhorse of the
/// capacity-pressure and eviction tests.
#[derive(Debug, Clone)]
pub struct BakedScaleKernel {
    factor: i16,
    key: String,
    cpu_cycles: Option<u64>,
}

impl BakedScaleKernel {
    /// Creates a kernel whose program multiplies by `factor`.
    pub fn new(factor: i16) -> Self {
        Self {
            factor,
            key: format!("baked-scale:{factor}"),
            cpu_cycles: None,
        }
    }

    /// Advertises the kernel's host-CPU implementation to heterogeneous
    /// pools at an estimated `cycles` per window
    /// ([`crate::backend::Offload::cpu_cycles`]), builder-style.  The
    /// CGRA path is unchanged; with the default `None` the kernel stays
    /// CGRA-only, so every homogeneous test and bench keeps its exact
    /// behaviour.
    #[must_use]
    pub fn with_cpu_offload(mut self, cycles: u64) -> Self {
        self.cpu_cycles = Some(cycles);
        self
    }

    /// The baked-in factor.
    pub fn factor(&self) -> i16 {
        self.factor
    }
}

impl Kernel for BakedScaleKernel {
    type Input = [i32];
    type Output = Vec<i32>;

    fn name(&self) -> &str {
        "baked-scale"
    }

    fn cache_key(&self) -> String {
        self.key.clone()
    }

    fn resources(&self) -> Resources {
        Resources {
            columns: 1,
            spm_lines: 2,
            srf_slots: 0,
        }
    }

    fn program(&self, geometry: &Geometry) -> Result<KernelProgram> {
        scale_program(geometry, &self.key, None, RcSrc::Imm(self.factor))
    }

    fn execute(&self, ctx: &mut LaunchCtx<'_>, input: &[i32]) -> Result<Vec<i32>> {
        scale_execute(ctx, "baked-scale", input)
    }

    fn offload(&self) -> crate::backend::Offload {
        crate::backend::Offload {
            fft: None,
            cpu_cycles: self.cpu_cycles,
        }
    }

    fn execute_cpu(
        &self,
        cpu: &mut vwr2a_soc::cpu::Cpu,
        sram: &mut vwr2a_soc::sram::Sram,
        input: &[i32],
    ) -> Result<(Vec<i32>, vwr2a_soc::cpu::CpuRunStats)> {
        use vwr2a_soc::cpu::CpuInstr;
        if input.is_empty() || input.len() > LINE {
            return Err(RuntimeError::invalid_input(format!(
                "baked-scale kernel takes 1..={LINE} words, got {}",
                input.len()
            )));
        }
        // Reload the window into SRAM every time: the host's memory
        // persists across jobs, and outputs must not depend on what ran
        // before.
        let n = input.len();
        sram.load(0, input)
            .map_err(|e| RuntimeError::invalid_input(e.to_string()))?;
        // r1 = factor, r2 = index, r3 = n; sram[n + i] = sram[i] * r1.
        // `Mul` keeps the low 32 bits, matching the RC datapath.
        let program = [
            CpuInstr::Li {
                rd: 1,
                imm: i32::from(self.factor),
            },
            CpuInstr::Li { rd: 2, imm: 0 },
            CpuInstr::Li {
                rd: 3,
                imm: n as i32,
            },
            CpuInstr::Lw {
                rd: 4,
                rs1: 2,
                offset: 0,
            },
            CpuInstr::Mul {
                rd: 4,
                rs1: 4,
                rs2: 1,
            },
            CpuInstr::Sw {
                rs2: 4,
                rs1: 2,
                offset: n as i32,
            },
            CpuInstr::Addi {
                rd: 2,
                rs1: 2,
                imm: 1,
            },
            CpuInstr::Blt {
                rs1: 2,
                rs2: 3,
                target: 3,
            },
            CpuInstr::Halt,
        ];
        let stats = cpu
            .run(&program, sram)
            .map_err(|e| RuntimeError::invalid_input(e.to_string()))?;
        let out = sram
            .dump(n, n)
            .map_err(|e| RuntimeError::invalid_input(e.to_string()))?;
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;

    #[test]
    fn scales_and_reports_cold_then_warm() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(3);
        let input: Vec<i32> = (0..100).collect();

        let (out, cold) = session.run(&kernel, &input).unwrap();
        assert_eq!(out, (0..100).map(|v| v * 3).collect::<Vec<_>>());
        assert_eq!(cold.invocations, 1);
        assert_eq!(cold.cold_launches, 1);
        assert_eq!(cold.warm_launches, 0);
        assert!(cold.counters.config_words_loaded > 0);

        let (out2, warm) = session.run(&kernel, &input).unwrap();
        assert_eq!(out, out2);
        assert_eq!(warm.cold_launches, 0);
        assert_eq!(warm.warm_launches, 1);
        assert_eq!(warm.counters.config_words_loaded, 0);
        assert!(
            warm.cycles < cold.cycles,
            "warm {} vs cold {}",
            warm.cycles,
            cold.cycles
        );
        // The saving is exactly the configuration-word streaming.
        assert_eq!(cold.cycles - warm.cycles, cold.counters.config_words_loaded);
    }

    #[test]
    fn equal_cache_keys_share_residency() {
        let mut session = Session::new();
        let a = ScaleKernel::new(2);
        let b = ScaleKernel::new(2);
        let input = [1i32, 2, 3];
        session.run(&a, &input[..]).unwrap();
        assert!(session.is_warm(&b));
        assert_eq!(session.loaded_programs(), 1);
        let (_, report) = session.run(&b, &input[..]).unwrap();
        assert_eq!(report.warm_launches, 1);
    }

    #[test]
    fn batch_is_bit_identical_to_independent_cold_runs() {
        let kernel = ScaleKernel::new(-7);
        let windows: Vec<Vec<i32>> = (0..5)
            .map(|w| (0..64).map(|i| i * (w + 1)).collect())
            .collect();

        let mut session = Session::new();
        let (batch_out, report) = session
            .run_batch(&kernel, windows.iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(report.invocations, 5);
        assert_eq!(report.cold_launches, 1);
        assert_eq!(report.warm_launches, 4);

        for (window, batched) in windows.iter().zip(&batch_out) {
            let mut fresh = Session::new();
            let (cold_out, _) = fresh.run(&kernel, window).unwrap();
            assert_eq!(&cold_out, batched);
        }
    }

    #[test]
    fn stream_delivers_outputs_in_order() {
        let kernel = ScaleKernel::new(10);
        let windows: Vec<Vec<i32>> = (1..=4).map(|w| vec![w; 8]).collect();
        let mut session = Session::new();
        let mut firsts = Vec::new();
        let report = session
            .run_stream(&kernel, windows.iter().map(Vec::as_slice), |out| {
                firsts.push(out[0]);
                Ok(())
            })
            .unwrap();
        assert_eq!(firsts, vec![10, 20, 30, 40]);
        assert_eq!(report.launches(), 4);
        // Four windows through the pipelined engine: staging overlaps
        // compute, so the wall clock beats the serial phase sum.
        assert!(report.wall_cycles < report.serial_cycles());
        assert!(report.overlap_ratio() > 0.0);
    }

    #[test]
    fn invalid_input_is_rejected() {
        let mut session = Session::new();
        let kernel = ScaleKernel::new(1);
        let too_long = vec![0i32; 129];
        assert!(matches!(
            session.run(&kernel, &too_long[..]),
            Err(RuntimeError::InvalidInput { .. })
        ));
        assert!(session.run(&kernel, &[][..]).is_err());
    }

    #[test]
    fn oversized_resource_needs_are_rejected_up_front() {
        struct Greedy;
        impl Kernel for Greedy {
            type Input = ();
            type Output = ();
            fn name(&self) -> &str {
                "greedy"
            }
            fn resources(&self) -> Resources {
                Resources {
                    columns: 99,
                    spm_lines: 1,
                    srf_slots: 1,
                }
            }
            fn program(&self, _g: &Geometry) -> Result<KernelProgram> {
                unreachable!("rejected before program construction")
            }
            fn execute(&self, _ctx: &mut LaunchCtx<'_>, _input: &()) -> Result<()> {
                unreachable!()
            }
        }
        let mut session = Session::new();
        assert!(matches!(
            session.register(&Greedy),
            Err(RuntimeError::Resources { .. })
        ));
    }
}
