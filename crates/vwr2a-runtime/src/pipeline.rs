//! The pipelined stream schedule behind [`crate::Session::run_stream`].
//!
//! # The execution model
//!
//! A streamed workload runs the same kernel over a sequence of windows.
//! Executed naively, every window serialises its three phases — DMA the
//! window into the SPM, run the array, DMA the result out — and the array
//! idles during every transfer.  The hardware does better: the SPM is
//! double-buffered, so while the array computes window *i* the DMA already
//! **stages** window *i+1* into the other half-buffer and **drains**
//! window *i−1* behind the launch, and the host learns of each completion
//! through an interrupt rather than by busy-waiting.
//!
//! [`StreamSchedule`] reproduces that overlap on the core's
//! [`Timeline`].  For window *w* with per-phase durations
//! ([`WindowPhases`]) it schedules:
//!
//! 1. **stage(w)** on [`Engine::Dma`] — not before window *w−2*'s compute
//!    finished (that is when the input half-buffer frees);
//! 2. **drain(w−1)** on [`Engine::Dma`] behind the stage — not before
//!    window *w−1*'s completion interrupt was serviced;
//! 3. **config(w)** on [`Engine::ConfigLoad`] after the stage (zero-length
//!    for warm launches);
//! 4. **compute(w)** on [`Engine::Compute`] — after the configuration is
//!    in place and not before window *w−2*'s drain freed the output
//!    half-buffer;
//! 5. the **kernel-done interrupt** on [`Engine::Interrupt`] after the
//!    compute ([`COMPLETION_IRQ_CYCLES`](latency::COMPLETION_IRQ_CYCLES)
//!    from the SoC model — the host reacts to the completion interrupt,
//!    it is not notified synchronously).
//!
//! [`StreamSchedule::finish`] drains the last window and services the
//! final DMA-done interrupt.  The resulting timeline yields the
//! overlapped [`Timeline::wall_cycles`], the per-engine
//! [`Timeline::occupancy`] and the
//! [`Timeline::overlap_ratio`] reported through
//! [`crate::RunReport`].
//!
//! Functional execution stays strictly sequential (outputs are
//! bit-identical to the synchronous path); the schedule models *when* the
//! already-verified work would retire on pipelined hardware.

use vwr2a_core::timeline::{Engine, Span, Timeline};
use vwr2a_soc::irq::latency;

/// Per-engine durations of one kernel invocation (one window), collected
/// by the session's [`crate::LaunchCtx`] while the invocation executes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowPhases {
    /// DMA-in cycles: staging the window's inputs into the SPM.
    pub stage: u64,
    /// Configuration-word streaming cycles (non-zero only for cold
    /// launches).
    pub config: u64,
    /// Array execution cycles plus the host's SRF slave-port accesses tied
    /// to the launches.
    pub compute: u64,
    /// DMA-out cycles: draining the window's outputs back to system
    /// memory.
    pub drain: u64,
}

impl WindowPhases {
    /// Serial cost of the window without any overlap or interrupt
    /// modelling (the classic "DMA-in + compute + DMA-out" sum).
    pub fn total(&self) -> u64 {
        self.stage + self.config + self.compute + self.drain
    }
}

/// The spans one [`StreamSchedule::push`] placed for its window.  The
/// window's drain is scheduled later — behind the *next* window's stage —
/// and therefore not part of this snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpans {
    /// The staging DMA transfer.
    pub stage: Span,
    /// The configuration-word streaming (zero-length when warm).
    pub config: Span,
    /// The array execution.
    pub compute: Span,
    /// The completion-interrupt service.
    pub irq: Span,
}

/// Builds the overlapped timeline of a double-buffered window stream.
///
/// # Example
///
/// ```
/// use vwr2a_runtime::pipeline::{StreamSchedule, WindowPhases};
///
/// let phases = WindowPhases { stage: 150, config: 0, compute: 700, drain: 150 };
/// let mut schedule = StreamSchedule::new();
/// for _ in 0..8 {
///     schedule.push(phases);
/// }
/// let timeline = schedule.finish();
/// // Staging and draining hide behind the array's compute time.
/// assert!(timeline.wall_cycles() < timeline.serial_cycles());
/// assert!(timeline.overlap_ratio() > 0.2);
/// ```
#[derive(Debug, Default)]
pub struct StreamSchedule {
    timeline: Timeline,
    windows: usize,
    /// Compute-end cycle of the window last run in each SPM half-buffer.
    compute_end: [u64; 2],
    /// Drain-end cycle of the window last run in each SPM half-buffer.
    drain_end: [u64; 2],
    /// The previous window's drain: (earliest start, duration).  Scheduled
    /// behind the next window's stage, or by [`StreamSchedule::finish`].
    pending_drain: Option<(u64, u64)>,
}

impl StreamSchedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Windows pushed so far.
    pub fn windows(&self) -> usize {
        self.windows
    }

    /// First cycle at which `engine` has no work scheduled so far (the
    /// final window's drain may still be pending — see
    /// [`StreamSchedule::finish`]).  The pool's residency-aware placement
    /// tie-breaks jobs on each array's [`Engine::Compute`] value.
    pub fn free_at(&self, engine: Engine) -> u64 {
        self.timeline.free_at(engine)
    }

    /// The schedule's timeline as built so far.  [`StreamSchedule::finish`]
    /// returns the completed timeline (with the last drain flushed); this
    /// view exists for mid-stream queries like
    /// [`StreamSchedule::free_at`].
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Stages a speculative configuration-word stream (a *prefetch*) onto
    /// the schedule's [`Engine::ConfigLoad`] lane at the lane's earliest
    /// free cycle, returning the placed [`Span`].
    ///
    /// The configuration streamer is idle while the array computes and the
    /// DMA stages, so a prefetch placed *before* its job's first window
    /// overlaps whatever backlog the schedule already carries — the reload
    /// leaves the launch's critical path.  Because per-engine placement is
    /// monotonic ([`vwr2a_core::timeline::Timeline::schedule`]), the span
    /// can never collide with the config span of a launch already pinned on
    /// the lane, and every later [`StreamSchedule::push`] queues its own
    /// config span behind the prefetch.
    pub fn prefetch(&mut self, config_cycles: u64) -> Span {
        self.prefetch_at(config_cycles, 0)
    }

    /// As [`StreamSchedule::prefetch`], but the staged stream starts no
    /// earlier than `not_before` — the online serving layer stages a job's
    /// reload when the job is *dispatched*, so the speculative streaming
    /// must not be back-dated to before the dispatch decision existed.
    pub fn prefetch_at(&mut self, config_cycles: u64, not_before: u64) -> Span {
        self.timeline
            .schedule(Engine::ConfigLoad, not_before, config_cycles)
    }

    /// Services one completion interrupt on the interrupt engine: the
    /// peripheral raises its line (`vwr2a_soc::irq::lines`) at
    /// `not_before`, and the host pays the Cortex-M4 entry/exit latency
    /// before it can react.
    fn service_irq(&mut self, not_before: u64) -> Span {
        self.timeline.schedule(
            Engine::Interrupt,
            not_before,
            latency::COMPLETION_IRQ_CYCLES,
        )
    }

    /// Schedules the previous window's drain behind the stage that was
    /// just placed.
    fn flush_pending_drain(&mut self) {
        if let Some((ready, duration)) = self.pending_drain.take() {
            let prev_slot = (self.windows - 1) % 2;
            if duration > 0 {
                let span = self.timeline.schedule(Engine::Dma, ready, duration);
                self.drain_end[prev_slot] = span.end;
            } else {
                // Nothing to drain (e.g. a reduction read back over the
                // SRF): the output buffer is free as soon as the host
                // serviced the completion interrupt.
                self.drain_end[prev_slot] = ready;
            }
        }
    }

    /// Appends one window with the given phase durations, returning the
    /// spans placed for it (its drain is scheduled behind the *next*
    /// window's stage).
    pub fn push(&mut self, phases: WindowPhases) -> WindowSpans {
        self.push_at(phases, 0)
    }

    /// As [`StreamSchedule::push`], but the window's staging starts no
    /// earlier than `not_before`.
    ///
    /// This is how an *arrival-stamped* job lands on a schedule: a window
    /// cannot stage before its job exists, so the serving layer clamps the
    /// first phase to the job's arrival (the rest of the chain follows
    /// from it).  On a backlogged schedule the clamp is usually moot — the
    /// per-engine lanes are monotonic, so the stage queues behind earlier
    /// work anyway — but on an idle array it keeps the timeline honest:
    /// the gap until the arrival shows up as idle time, not as work
    /// magically done in the past.
    pub fn push_at(&mut self, phases: WindowPhases, not_before: u64) -> WindowSpans {
        let slot = self.windows % 2;
        // Stage into the half-buffer whose previous occupant (window w-2)
        // must have been consumed by its compute — and never before the
        // window exists.
        let input_free = self.compute_end[slot].max(not_before);
        let stage = self
            .timeline
            .schedule(Engine::Dma, input_free, phases.stage);
        // Drain window w-1 behind the launch.
        self.flush_pending_drain();
        // Cold launches stream configuration words once staging is done.
        let config = self
            .timeline
            .schedule(Engine::ConfigLoad, stage.end, phases.config);
        // The array needs its inputs and configuration in place, and the
        // output half-buffer must have been drained (window w-2).
        let output_free = self.drain_end[slot];
        let compute =
            self.timeline
                .schedule(Engine::Compute, config.end.max(output_free), phases.compute);
        self.compute_end[slot] = compute.end;
        // The host learns of the completion through the kernel-done
        // interrupt and only then programs the drain.
        let irq = self.service_irq(compute.end);
        self.pending_drain = Some((irq.end, phases.drain));
        self.windows += 1;
        WindowSpans {
            stage,
            config,
            compute,
            irq,
        }
    }

    /// Drains the final window, services its DMA-done interrupt, and
    /// returns the completed timeline.
    pub fn finish(mut self) -> Timeline {
        if let Some((ready, duration)) = self.pending_drain.take() {
            if duration > 0 {
                let span = self.timeline.schedule(Engine::Dma, ready, duration);
                // The stream is over when the host has serviced the final
                // drain's DMA-done interrupt.
                self.service_irq(span.end);
            }
        }
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IRQ: u64 = latency::COMPLETION_IRQ_CYCLES;

    fn phases(stage: u64, config: u64, compute: u64, drain: u64) -> WindowPhases {
        WindowPhases {
            stage,
            config,
            compute,
            drain,
        }
    }

    #[test]
    fn empty_stream_is_free() {
        let t = StreamSchedule::new().finish();
        assert_eq!(t.wall_cycles(), 0);
        assert_eq!(t.serial_cycles(), 0);
        assert_eq!(t.overlap_ratio(), 0.0);
    }

    #[test]
    fn single_window_is_fully_serial() {
        let mut s = StreamSchedule::new();
        let p = phases(100, 50, 400, 120);
        s.push(p);
        let t = s.finish();
        // stage → config → compute → kernel-done IRQ → drain → DMA-done
        // IRQ, nothing overlapping anything.
        assert_eq!(t.wall_cycles(), p.total() + 2 * IRQ);
        assert_eq!(t.serial_cycles(), t.wall_cycles());
        assert_eq!(t.overlap_ratio(), 0.0);
    }

    #[test]
    fn single_window_without_drain_gets_one_interrupt() {
        let mut s = StreamSchedule::new();
        s.push(phases(100, 0, 400, 0));
        let t = s.finish();
        assert_eq!(t.wall_cycles(), 500 + IRQ);
        assert_eq!(t.busy_cycles(Engine::Interrupt), IRQ);
    }

    #[test]
    fn staging_overlaps_compute_of_the_previous_window() {
        let mut s = StreamSchedule::new();
        let p = phases(100, 0, 1_000, 100);
        let w0 = s.push(p);
        let w1 = s.push(p);
        // Window 1 stages while window 0 computes...
        assert!(w1.stage.start < w0.compute.end);
        // ...and the array relaunches as soon as the completion interrupt
        // and (already-finished) staging allow.
        assert_eq!(w1.compute.start, w0.compute.end);
        let t = s.finish();
        assert!(t.wall_cycles() < t.serial_cycles());
    }

    #[test]
    fn four_window_wall_clock_beats_the_serial_sum() {
        let mut s = StreamSchedule::new();
        let p = phases(150, 0, 700, 150);
        for _ in 0..4 {
            s.push(p);
        }
        let t = s.finish();
        // The acceptance bound: strictly less than the per-window
        // DMA-in + compute + DMA-out sum, even before interrupt costs.
        assert!(t.wall_cycles() < 4 * p.total());
        assert!(t.overlap_ratio() > 0.0);
    }

    #[test]
    fn double_buffering_limits_lookahead_to_two_windows() {
        let mut s = StreamSchedule::new();
        // DMA-bound stream: staging takes far longer than compute, so
        // without a buffer limit stage(2) would start immediately after
        // stage(1).
        let p = phases(1_000, 0, 10, 5);
        let w0 = s.push(p);
        let _w1 = s.push(p);
        let w2 = s.push(p);
        assert!(
            w2.stage.start >= w0.compute.end,
            "window 2 must wait for window 0's half-buffer"
        );
        s.finish();
    }

    #[test]
    fn compute_bound_streams_keep_the_array_saturated() {
        let mut s = StreamSchedule::new();
        let p = phases(50, 0, 900, 50);
        let mut prev_end = None;
        for _ in 0..6 {
            let w = s.push(p);
            if let Some(end) = prev_end {
                assert_eq!(w.compute.start, end, "the array must never idle");
            }
            prev_end = Some(w.compute.end);
        }
        let t = s.finish();
        // Wall clock ≈ first stage + N computes + final IRQ/drain tail.
        assert!(t.wall_cycles() < 6 * p.total());
        assert_eq!(t.busy_cycles(Engine::Compute), 6 * 900);
    }

    #[test]
    fn free_at_tracks_the_compute_engine_mid_stream() {
        let mut s = StreamSchedule::new();
        assert_eq!(s.free_at(Engine::Compute), 0);
        let w0 = s.push(phases(100, 0, 400, 50));
        assert_eq!(s.free_at(Engine::Compute), w0.compute.end);
        assert_eq!(s.timeline().busy_cycles(Engine::Compute), 400);
        let w1 = s.push(phases(100, 0, 400, 50));
        assert_eq!(s.free_at(Engine::Compute), w1.compute.end);
        s.finish();
    }

    #[test]
    fn prefetch_spans_hide_behind_the_compute_backlog() {
        // An array with a compute backlog: the prefetched reload streams on
        // the idle ConfigLoad lane entirely during the backlog, and the
        // next job's first window launches warm (zero-length config span).
        let mut s = StreamSchedule::new();
        let backlog = s.push(phases(100, 0, 2_000, 100));
        let before = s.free_at(Engine::Compute);
        let prefetch = s.prefetch(300);
        assert_eq!(prefetch.duration(), 300);
        assert!(
            prefetch.end <= before,
            "prefetch [{}, {}) must end inside the backlog (compute free at {before})",
            prefetch.start,
            prefetch.end
        );
        // The compute lane is untouched by the prefetch.
        assert_eq!(s.free_at(Engine::Compute), before);
        let warm = s.push(phases(100, 0, 400, 100));
        assert_eq!(warm.config.duration(), 0);
        assert_eq!(warm.compute.start, backlog.compute.end);
        // Monotonic lane order: the prefetch collides with neither the
        // earlier launch's config span nor the warm window's.
        assert!(!prefetch.overlaps(&backlog.config));
        assert!(!prefetch.overlaps(&warm.config));
        let t = s.finish();
        assert_eq!(t.busy_cycles(Engine::ConfigLoad), 300);
    }

    #[test]
    fn prefetch_on_an_idle_schedule_overlaps_the_first_stage() {
        // Without a backlog the prefetch cannot hide behind compute, but it
        // still runs concurrently with the first window's DMA staging
        // instead of serialising stage -> config -> compute.
        let mut cold = StreamSchedule::new();
        cold.push(phases(200, 300, 400, 100));
        let cold_t = cold.finish();

        let mut prefetched = StreamSchedule::new();
        let span = prefetched.prefetch(300);
        assert_eq!((span.start, span.end), (0, 300));
        let w = prefetched.push(phases(200, 0, 400, 100));
        assert!(!span.overlaps(&w.config));
        let t = prefetched.finish();
        // config ∥ stage: the window computes at max(stage, prefetch) = 300
        // instead of stage + config = 500.
        assert_eq!(w.compute.start, 300);
        assert!(t.wall_cycles() < cold_t.wall_cycles());
        // Same total work either way.
        assert_eq!(t.serial_cycles(), cold_t.serial_cycles());
    }

    #[test]
    fn push_at_delays_an_idle_schedule_to_the_arrival() {
        // An idle array must not stage a window before the window's job
        // arrived: the gap is idle time, not back-dated work.
        let mut s = StreamSchedule::new();
        let w = s.push_at(phases(100, 0, 400, 50), 1_000);
        assert_eq!(w.stage.start, 1_000);
        assert_eq!(w.compute.start, 1_100);
        let t = s.finish();
        // The wall clock includes the arrival gap; the busy cycles do not.
        assert!(t.wall_cycles() >= 1_500);
        assert_eq!(t.busy_cycles(Engine::Compute), 400);
    }

    #[test]
    fn push_at_is_a_no_op_behind_a_backlog() {
        // With a backlog past the arrival, the clamped push places exactly
        // what an unclamped push would: the lanes are already monotonic.
        let p = phases(100, 0, 800, 100);
        let mut clamped = StreamSchedule::new();
        let mut plain = StreamSchedule::new();
        plain.push(p);
        clamped.push(p);
        let a = plain.push(p);
        let b = clamped.push_at(p, 50);
        assert_eq!(a, b);
        plain.finish();
        clamped.finish();
    }

    #[test]
    fn prefetch_at_respects_the_dispatch_cycle() {
        let mut s = StreamSchedule::new();
        let span = s.prefetch_at(300, 2_000);
        assert_eq!((span.start, span.end), (2_000, 2_300));
        // A later prefetch queues behind it on the ConfigLoad lane.
        let next = s.prefetch_at(100, 0);
        assert_eq!(next.start, 2_300);
        s.finish();
    }

    #[test]
    fn cold_config_load_only_delays_the_first_window() {
        let mut s = StreamSchedule::new();
        let w0 = s.push(phases(100, 300, 500, 100));
        let w1 = s.push(phases(100, 0, 500, 100));
        assert_eq!(w0.config.duration(), 300);
        assert_eq!(w1.config.duration(), 0);
        assert_eq!(w1.compute.start, w0.compute.end);
        s.finish();
    }
}
