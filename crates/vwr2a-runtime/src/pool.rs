//! Multi-accelerator pool: fan `(kernel, windows)` jobs across a fleet of
//! [`Session`]s behind one residency-aware scheduler.
//!
//! # The scheduling model
//!
//! A [`Pool`] owns N independent arrays — each a full [`Session`] with its
//! own `Vwr2a`, configuration memory and eviction policy.  A *job* is one
//! `(kernel, windows)` workload: a kernel plus the window stream to run
//! through it.  [`Pool::run_batch`] / [`Pool::run_stream`] place each job
//! on one array via the pool's [`Placement`] strategy and execute its
//! windows there on the array's own pipelined
//! [`StreamSchedule`] (staging overlapped
//! with compute, exactly like [`Session::run_stream`]).
//!
//! Placement is where the fleet either wins or loses: a kernel's program
//! must be *resident* in an array's configuration memory to launch warm,
//! so routing a job to an array that already holds its program skips the
//! configuration-word streaming entirely, while a residency-blind router
//! keeps paying cold reloads (and, under capacity pressure, keeps evicting
//! other jobs' programs).  Three strategies ship with the pool:
//!
//! * [`ResidencyAware`] — prefer arrays with the job's program resident,
//!   tie-breaking on the earliest-free compute engine of the per-array
//!   timeline; fall back to the earliest-free array when no one holds the
//!   program yet, and replicate a program onto a still-idle array rather
//!   than queue behind busy resident copies.  This is the scheduler the
//!   ROADMAP's fleet item asks for, and the pool's default.
//! * [`RoundRobin`] — job *i* goes to array *i mod N*, residency-blind.
//!   The baseline the `pool` bench bin compares against.
//! * [`LeastLoaded`] — route to the array with the fewest cumulative
//!   compute-busy cycles ([`Session::free_compute_at`]), balancing load
//!   without looking at residency.
//!
//! Outputs are **bit-identical** to running every job serially on one
//! session, for every strategy — placement only moves *where* (and
//! overlap only *when*) the already-verified work executes.  The merged
//! [`FleetReport`] exposes what placement changed: per-array busy and wall
//! cycles, the fleet wall clock (max over arrays), compute occupancy and
//! the cold-reload count.
//!
//! # Example
//!
//! ```
//! use vwr2a_runtime::pool::Pool;
//! use vwr2a_runtime::testing::BakedScaleKernel;
//!
//! # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
//! let mut pool = Pool::new(2); // two arrays, residency-aware placement
//! let double = BakedScaleKernel::new(2);
//! let triple = BakedScaleKernel::new(3);
//! let windows: Vec<Vec<i32>> = (0..4).map(|w| vec![w; 32]).collect();
//!
//! let jobs = [&double, &triple, &double, &triple]
//!     .map(|kernel| (kernel, windows.iter().map(Vec::as_slice)));
//! let (outputs, fleet) = pool.run_batch(jobs)?;
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(outputs[0][0], vec![0; 32]);
//! // Each program went cold once, on the one array it now lives on; the
//! // repeat jobs found it resident and launched warm.
//! assert_eq!(fleet.cold_reloads(), 2);
//! assert_eq!(fleet.warm_launches(), 14);
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::fmt;

use vwr2a_core::timeline::Engine;

use crate::error::{Result, RuntimeError};
use crate::pipeline::StreamSchedule;
use crate::report::{FleetReport, RunReport};
use crate::session::{Kernel, Session};

/// What a [`Placement`] strategy sees about the job being placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobView<'a> {
    /// Submission index of the job (0-based, in fan-out order).
    pub index: usize,
    /// The job kernel's [`Kernel::cache_key`] — program identity, i.e.
    /// what residency is tracked by.
    pub cache_key: &'a str,
    /// Lower-bound size hint of the job's window stream (exact for slices,
    /// `Vec`s and other exact-size iterators; `0` for opaque streams).
    /// The pool iterates windows lazily, so the true count is only known
    /// once the job has run.
    pub windows: usize,
}

/// What a [`Placement`] strategy sees about one array of the pool at the
/// moment a job is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayView {
    /// Index of the array in the pool.
    pub index: usize,
    /// `true` if the job's program is resident in this array's
    /// configuration memory ([`Session::is_resident_key`]).
    pub resident: bool,
    /// `true` if the program is resident *and* has launched on this array
    /// before (its next launch is warm).
    pub warm: bool,
    /// First cycle at which this array's compute engine is free on its
    /// current wave schedule
    /// ([`StreamSchedule::free_at`](crate::pipeline::StreamSchedule::free_at)
    /// on [`Engine::Compute`]).
    pub free_compute_at: u64,
    /// The array's cumulative compute-busy cycles over the session's whole
    /// lifetime ([`Session::free_compute_at`]) — the cross-wave load
    /// metric.
    pub busy_compute: u64,
    /// Distinct programs resident in the array's configuration memory.
    pub loaded_programs: usize,
}

/// Chooses which array of a [`Pool`] runs a job.
///
/// The strategy is consulted once per job, in submission order, with a
/// fresh snapshot of every array — so residency and timeline effects of
/// earlier placements are visible.  It must return an index into `arrays`;
/// an out-of-range index aborts the fan-out with
/// [`RuntimeError::Placement`] (the pool stays valid and reusable).
/// Strategies must be deterministic so fleet experiments are reproducible.
pub trait Placement: fmt::Debug + Send {
    /// Short strategy name used in reports and bench tables.
    fn name(&self) -> &'static str;

    /// Returns the index of the array that should run `job`.
    ///
    /// `arrays` is never empty (a pool has at least one array).
    fn place(&self, job: &JobView<'_>, arrays: &[ArrayView]) -> usize;
}

/// Residency-aware placement: prefer arrays that already hold the job's
/// program, tie-break on the earliest-free compute engine.
///
/// A job whose program is resident *somewhere* goes to the resident array
/// whose compute engine frees earliest (warm launch, no configuration
/// streaming).  A program nobody holds yet goes to the earliest-free array
/// overall — which both balances load and spreads distinct programs across
/// the fleet, so the steady state keeps every program resident on "its"
/// array instead of thrashing one configuration memory.  One refinement
/// keeps affinity from starving the fleet: when every resident array is
/// busy but some array is still completely *idle* this wave, the job is
/// placed there instead — the cold reload replicates the program onto the
/// idle array, and from then on both copies serve warm launches (without
/// this, a two-program workload would leave half of a four-array fleet
/// permanently idle).  Ties resolve to the lowest array index, keeping
/// placement deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyAware;

impl Placement for ResidencyAware {
    fn name(&self) -> &'static str {
        "residency-aware"
    }

    fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> usize {
        // Ties on the wave-local free time (e.g. every array idle at the
        // start of a wave) break on the lifetime compute load, so a
        // sequence of single-job waves still spreads first-seen programs
        // across the fleet instead of piling them onto array 0.
        let earliest_free = |candidates: &mut dyn Iterator<Item = &ArrayView>| {
            candidates
                .min_by_key(|a| (a.free_compute_at, a.busy_compute, a.index))
                .copied()
        };
        let best_any = earliest_free(&mut arrays.iter()).expect("a pool has at least one array");
        match earliest_free(&mut arrays.iter().filter(|a| a.resident)) {
            // Busy resident copies, but an idle array is available:
            // replicate rather than queue.
            Some(resident) if resident.free_compute_at > 0 && best_any.free_compute_at == 0 => {
                best_any.index
            }
            Some(resident) => resident.index,
            None => best_any.index,
        }
    }
}

/// Residency-blind baseline: job *i* runs on array *i mod N*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl Placement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&self, job: &JobView<'_>, arrays: &[ArrayView]) -> usize {
        job.index % arrays.len()
    }
}

/// Load-balancing placement: route to the array with the fewest cumulative
/// compute-busy cycles (ties to the lowest index).  Ignores residency —
/// useful as the "balanced but residency-blind" comparison point between
/// [`RoundRobin`] and [`ResidencyAware`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> usize {
        arrays
            .iter()
            .min_by_key(|a| (a.busy_compute, a.index))
            .map(|a| a.index)
            .expect("a pool has at least one array")
    }
}

/// A fleet of [`Session`]s behind one [`Placement`] scheduler.
///
/// Every fan-out call ([`Pool::run_batch`] / [`Pool::run_stream`]) is one
/// *wave*: each array starts the wave with an empty
/// [`StreamSchedule`] (its engines free at
/// cycle 0), jobs are placed and run in submission order, and the wave's
/// merged [`FleetReport`] is returned.  *Residency persists across waves*:
/// the sessions keep their loaded programs, so a later wave's jobs launch
/// warm wherever earlier waves already placed their programs.
/// [`Pool::stats`] accumulates the per-array accounting over all waves.
///
/// See the [module docs](crate::pool) for the scheduling model and a
/// runnable example.
#[derive(Debug)]
pub struct Pool {
    arrays: Vec<Session>,
    placement: Box<dyn Placement>,
    stats: FleetReport,
}

impl Pool {
    /// Creates a pool of `arrays` default sessions (paper geometry, LRU
    /// eviction) with the default [`ResidencyAware`] placement.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        Self::with_sessions((0..arrays).map(|_| Session::new()).collect())
    }

    /// Creates a pool over custom sessions (constrained geometries, custom
    /// eviction policies) with the default [`ResidencyAware`] placement.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty.
    pub fn with_sessions(sessions: Vec<Session>) -> Self {
        assert!(!sessions.is_empty(), "a pool needs at least one array");
        let stats = FleetReport::new(sessions.len());
        Self {
            arrays: sessions,
            placement: Box::new(ResidencyAware),
            stats,
        }
    }

    /// Replaces the placement strategy, builder-style.
    #[must_use]
    pub fn with_placement(mut self, placement: impl Placement + 'static) -> Self {
        self.set_placement(placement);
        self
    }

    /// Replaces the placement strategy (resident programs are unaffected).
    pub fn set_placement(&mut self, placement: impl Placement + 'static) {
        self.placement = Box::new(placement);
    }

    /// Name of the active placement strategy.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Number of arrays in the pool.
    pub fn arrays(&self) -> usize {
        self.arrays.len()
    }

    /// The session behind one array (residency inspection, tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array(&self, index: usize) -> &Session {
        &self.arrays[index]
    }

    /// Accumulated fleet accounting over every wave run so far (per-array
    /// wall clocks add across waves, as if the waves ran back to back).
    pub fn stats(&self) -> &FleetReport {
        &self.stats
    }

    /// Fans a batch of `(kernel, windows)` jobs across the fleet and
    /// collects each job's outputs, in window order, grouped by job in
    /// submission order.
    ///
    /// Outputs are bit-identical to running every job serially on one
    /// [`Session`] — for any placement strategy.  The returned
    /// [`FleetReport`] carries this wave's per-array and fleet-level
    /// accounting.
    ///
    /// # Errors
    ///
    /// As [`Session::run`] on the chosen array, plus
    /// [`RuntimeError::Placement`] if the strategy returns an out-of-range
    /// array index.  The first error aborts the fan-out; the pool and its
    /// sessions stay valid and reusable.
    #[allow(clippy::type_complexity)]
    pub fn run_batch<'k, K, J, W>(&mut self, jobs: J) -> Result<(Vec<Vec<K::Output>>, FleetReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let jobs: Vec<(&K, W)> = jobs.into_iter().collect();
        let mut outputs: Vec<Vec<K::Output>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        let report = self.run_stream(jobs, |job, output| {
            outputs[job].push(output);
            Ok(())
        })?;
        Ok((outputs, report))
    }

    /// Streams a fan-out of `(kernel, windows)` jobs across the fleet,
    /// handing each output to `sink` together with its job's submission
    /// index, as soon as it is computed (jobs execute in submission order;
    /// within a job, windows in window order).
    ///
    /// # Errors
    ///
    /// As [`Pool::run_batch`]; an error returned by `sink` aborts the
    /// fan-out as [`RuntimeError::Sink`] does for [`Session::run_stream`].
    /// Work performed before the abort — cold reloads, invocations, busy
    /// cycles — is still folded into [`Pool::stats`], matching the
    /// sessions' own accounting of failed invocations.
    pub fn run_stream<'k, K, J, W, F>(&mut self, jobs: J, sink: F) -> Result<FleetReport>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let arrays = self.arrays.len();
        let mut schedules: Vec<StreamSchedule> =
            (0..arrays).map(|_| StreamSchedule::new()).collect();
        let mut wave = FleetReport::new(arrays);

        let result = self.fan_out(jobs, sink, &mut wave, &mut schedules);
        for (array, schedule) in wave.arrays.iter_mut().zip(schedules) {
            let timeline = schedule.finish();
            array.report.wall_cycles = timeline.wall_cycles();
            array.report.busy = timeline.occupancy();
        }
        // The wave's accounting survives an abort: the sessions did the
        // work, so the fleet statistics must show it.
        self.stats.absorb(&wave);
        result.map(|()| wave)
    }

    /// The job loop of [`Pool::run_stream`]: places and runs every job,
    /// recording into `wave`/`schedules` as it goes so the caller can
    /// salvage the accounting of an aborted fan-out.
    fn fan_out<'k, K, J, W, F>(
        &mut self,
        jobs: J,
        mut sink: F,
        wave: &mut FleetReport,
        schedules: &mut [StreamSchedule],
    ) -> Result<()>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let arrays = self.arrays.len();
        for (index, (kernel, windows)) in jobs.into_iter().enumerate() {
            let key = kernel.cache_key();
            // Windows are consumed lazily (constant memory in the window
            // count, like `Session::run_stream`); placement sees the
            // iterator's size hint.
            let windows = windows.into_iter();
            let windows_hint = windows.size_hint().0;
            let views: Vec<ArrayView> = self
                .arrays
                .iter()
                .enumerate()
                .map(|(i, session)| ArrayView {
                    index: i,
                    resident: session.is_resident_key(&key),
                    warm: session.is_warm(kernel),
                    free_compute_at: schedules[i].free_at(Engine::Compute),
                    busy_compute: session.free_compute_at(),
                    loaded_programs: session.loaded_programs(),
                })
                .collect();
            let job = JobView {
                index,
                cache_key: &key,
                windows: windows_hint,
            };
            let chosen = self.placement.place(&job, &views);
            if chosen >= arrays {
                return Err(RuntimeError::Placement {
                    index: chosen,
                    arrays,
                });
            }
            wave.jobs += 1;
            wave.arrays[chosen].jobs += 1;
            for window in windows {
                let (output, phases) = self.arrays[chosen].run_into(
                    kernel,
                    window.borrow(),
                    &mut wave.arrays[chosen].report,
                )?;
                schedules[chosen].push(phases);
                sink(index, output)?;
            }
        }
        Ok(())
    }

    /// Runs every job of the same shape on one fresh, unconstrained
    /// [`Session`], serially — the reference the pool's equivalence tests
    /// compare against.  Outputs are grouped by job in submission order;
    /// the returned [`RunReport`] aggregates the whole serial run.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the run.
    #[allow(clippy::type_complexity)]
    pub fn run_serial_reference<'k, K, J, W>(jobs: J) -> Result<(Vec<Vec<K::Output>>, RunReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let mut session = Session::new();
        let mut outputs = Vec::new();
        let mut total = RunReport::new("serial-reference");
        for (kernel, windows) in jobs {
            let mut job_outputs = Vec::new();
            for window in windows {
                let (output, report) = session.run(kernel, window.borrow())?;
                total.absorb(&report);
                job_outputs.push(output);
            }
            outputs.push(job_outputs);
        }
        Ok((outputs, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{constrained_sessions, BakedScaleKernel};
    use vwr2a_core::geometry::Geometry;

    fn baked_words() -> usize {
        BakedScaleKernel::new(1)
            .program(&Geometry::paper())
            .unwrap()
            .config_words()
    }

    fn windows(count: usize, seed: i32) -> Vec<Vec<i32>> {
        (0..count)
            .map(|w| (0..96).map(|i| i + seed + 7 * w as i32).collect())
            .collect()
    }

    /// One job per pick, 2 windows each, kernels indexed by `picks`.
    fn picked_jobs<'a>(
        kernels: &'a [BakedScaleKernel],
        picks: &[usize],
    ) -> Vec<(&'a BakedScaleKernel, Vec<Vec<i32>>)> {
        picks
            .iter()
            .enumerate()
            .map(|(j, &pick)| (&kernels[pick], windows(2, j as i32)))
            .collect()
    }

    /// Outputs of a fan-out, grouped by job, then window.
    type JobOutputs = Vec<Vec<Vec<i32>>>;

    /// Fans `picks`-selected kernels over a 2-array pool with 2-slot
    /// configuration memories, returning (pool outputs, fleet report,
    /// serial reference outputs).
    fn run_mixed(
        factors: &[i16],
        picks: &[usize],
        placement: impl Placement + 'static,
    ) -> (JobOutputs, FleetReport, JobOutputs) {
        let kernels: Vec<BakedScaleKernel> =
            factors.iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * baked_words()))
            .with_placement(placement);
        let jobs = picked_jobs(&kernels, picks);
        let (outputs, fleet) = pool
            .run_batch(
                jobs.iter()
                    .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
            )
            .unwrap();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        (outputs, fleet, serial)
    }

    /// 12 jobs cycling over 3 distinct programs.
    const THREE_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
    /// 12 jobs over 4 distinct programs in an irregular order, so
    /// round-robin cannot accidentally split the working set cleanly
    /// across the two arrays.
    const FOUR_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 3, 2, 0, 1, 3, 0, 2, 3, 1];

    #[test]
    fn pool_outputs_match_serial_execution_for_every_strategy() {
        let factors = [2i16, 3, 5];
        let (ra, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        assert_eq!(ra, serial);
        let (rr, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(rr, serial);
        let (ll, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, LeastLoaded);
        assert_eq!(ll, serial);
    }

    #[test]
    fn residency_aware_beats_round_robin_on_cold_reloads() {
        // The satellite scenario: 2 arrays, 3 distinct kernels, 2-slot
        // configuration memories.  Residency-aware placement pins each
        // program to "its" array and goes cold exactly once per program;
        // round-robin alternates every program across both 2-slot
        // memories — each array cycles through all 3 programs and keeps
        // re-streaming configuration words.
        let factors = [2i16, 3, 5];
        let (_, residency_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        let (_, round_robin, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(
            residency_aware.cold_reloads(),
            3,
            "each of the 3 programs loads cold exactly once"
        );
        assert_eq!(residency_aware.evictions(), 0);
        assert!(
            residency_aware.cold_reloads() < round_robin.cold_reloads(),
            "residency-aware {} cold reloads must beat round-robin {}",
            residency_aware.cold_reloads(),
            round_robin.cold_reloads()
        );
        assert!(round_robin.evictions() > 0, "3 programs thrash 2 slots");
    }

    /// A launch-only kernel with a NOP-padded program: a distinct program
    /// per `key`, sized so cold configuration streaming is expensive
    /// relative to the (DMA-free) execution — the shape on which placement
    /// quality shows up in the fleet wall clock.
    struct PaddedKernel {
        key: String,
    }

    impl PaddedKernel {
        const ROWS: usize = 24;

        fn new(key: &str) -> Self {
            Self {
                key: key.to_string(),
            }
        }

        fn words() -> usize {
            PaddedKernel::new("probe")
                .program(&Geometry::paper())
                .unwrap()
                .config_words()
        }
    }

    impl Kernel for PaddedKernel {
        type Input = ();
        type Output = u64;
        fn name(&self) -> &str {
            "padded"
        }
        fn cache_key(&self) -> String {
            self.key.clone()
        }
        fn resources(&self) -> crate::session::Resources {
            crate::session::Resources::default()
        }
        fn program(&self, g: &Geometry) -> Result<vwr2a_core::program::KernelProgram> {
            use vwr2a_core::program::{ColumnProgram, Row};
            let mut rows = vec![Row::new(g.rcs_per_column); Self::ROWS];
            rows.push(Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit));
            Ok(vwr2a_core::program::KernelProgram::new(
                &self.key,
                vec![ColumnProgram::new(rows)?],
            )?)
        }
        fn execute(&self, ctx: &mut crate::session::LaunchCtx<'_>, _input: &()) -> Result<u64> {
            ctx.launch()
        }
    }

    #[test]
    fn residency_aware_beats_round_robin_on_fleet_occupancy() {
        // The bench-bin acceptance claim: on a mixed-kernel sweep whose
        // working set fills the fleet (4 programs over 2 × 2 slots),
        // residency-aware placement spreads the programs across the
        // arrays once and then runs warm and balanced, while round-robin
        // keeps every array cycling through all 4 programs — the extra
        // configuration streaming sits on each array's critical path, so
        // a smaller fraction of the fleet's array-cycles goes to compute.
        let kernels: Vec<PaddedKernel> = (0..4)
            .map(|k| PaddedKernel::new(&format!("p{k}")))
            .collect();
        let run = |placement: Box<dyn Placement>| {
            let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * PaddedKernel::words()));
            pool.placement = placement;
            let (_, fleet) = pool
                .run_batch(
                    FOUR_KERNEL_PICKS
                        .iter()
                        .map(|&pick| (&kernels[pick], vec![(); 2])),
                )
                .unwrap();
            fleet
        };
        let residency_aware = run(Box::new(ResidencyAware));
        let round_robin = run(Box::new(RoundRobin));
        assert_eq!(residency_aware.cold_reloads(), 4);
        assert_eq!(residency_aware.evictions(), 0);
        assert!(round_robin.evictions() > 0);
        assert!(
            round_robin.cold_reloads() > residency_aware.cold_reloads(),
            "round-robin must thrash the 2-slot memories"
        );
        assert!(
            residency_aware.occupancy() > round_robin.occupancy(),
            "occupancy {:.3} must beat {:.3}",
            residency_aware.occupancy(),
            round_robin.occupancy()
        );
        assert!(residency_aware.wall_cycles() < round_robin.wall_cycles());
    }

    #[test]
    fn fleet_wall_clock_and_busy_conserve_the_per_array_schedules() {
        let (_, fleet, _) = run_mixed(&[2i16, 3, 5], &THREE_KERNEL_PICKS, ResidencyAware);
        let max_wall = fleet
            .arrays
            .iter()
            .map(|a| a.report.wall_cycles)
            .max()
            .unwrap();
        assert_eq!(fleet.wall_cycles(), max_wall);
        for array in &fleet.arrays {
            assert!(fleet.wall_cycles() >= array.report.wall_cycles);
            // Per-array work conservation, as in the schedule proptest:
            // every phase cycle appears exactly once in the occupancy.
            assert_eq!(
                array.report.busy.config_load + array.report.busy.dma + array.report.busy.compute,
                array.report.cycles
            );
        }
        let busy_sum = fleet
            .arrays
            .iter()
            .map(|a| a.report.busy.total())
            .sum::<u64>();
        assert_eq!(fleet.busy().total(), busy_sum);
    }

    #[test]
    fn placement_sees_residency_and_balances_new_programs() {
        let kernels: Vec<BakedScaleKernel> =
            [2, 3].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = (0..4)
            .map(|j| (&kernels[j % 2], windows(1, j as i32)))
            .collect();
        pool.run_batch(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        // The two distinct programs must have been spread over the two
        // arrays (the fallback path places the second program on the
        // not-yet-busy array), and each repeat went back to its array.
        assert!(pool.array(0).is_resident(&kernels[0]));
        assert!(pool.array(1).is_resident(&kernels[1]));
        assert!(!pool.array(0).is_resident(&kernels[1]));
        assert!(!pool.array(1).is_resident(&kernels[0]));
    }

    #[test]
    fn residency_persists_across_waves() {
        let kernel = BakedScaleKernel::new(9);
        let mut pool = Pool::new(2);
        let ws = windows(2, 0);
        let (_, first) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(first.cold_reloads(), 1);
        let (_, second) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(second.cold_reloads(), 0, "wave 2 finds the program warm");
        // stats() accumulated both waves.
        assert_eq!(pool.stats().jobs, 2);
        assert_eq!(pool.stats().cold_reloads(), 1);
        assert_eq!(pool.stats().invocations(), 4);
    }

    #[test]
    fn run_stream_delivers_outputs_with_job_indices() {
        let kernels: Vec<BakedScaleKernel> =
            [4, 5].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let mut seen: Vec<(usize, i32)> = Vec::new();
        let window = [10i32, 20];
        let report = pool
            .run_stream(
                (0..3).map(|j| (&kernels[j % 2], [window.as_slice()])),
                |job, out| {
                    seen.push((job, out[0]));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(seen, vec![(0, 40), (1, 50), (2, 40)]);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.invocations(), 3);
    }

    #[test]
    fn sink_error_aborts_the_fan_out_but_the_pool_stays_usable() {
        let kernel = BakedScaleKernel::new(3);
        let mut pool = Pool::new(2);
        let ws = windows(3, 0);
        let err = pool
            .run_stream([(&kernel, ws.iter().map(Vec::as_slice))], |_, _| {
                Err(RuntimeError::sink("downstream is full"))
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        // The aborted wave's work is not lost from the fleet statistics:
        // the cold configuration stream physically ran.
        assert_eq!(pool.stats().jobs, 1);
        assert_eq!(pool.stats().cold_reloads(), 1);
        assert_eq!(pool.stats().invocations(), 1);
        assert!(pool.stats().busy().compute > 0);
        // The placed program stays resident; the next wave runs warm.
        let (_, report) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(report.cold_reloads(), 0);
    }

    #[test]
    fn rogue_placement_fails_cleanly() {
        #[derive(Debug)]
        struct OutOfRange;
        impl Placement for OutOfRange {
            fn name(&self) -> &'static str {
                "out-of-range"
            }
            fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> usize {
                arrays.len() + 3
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let mut pool = Pool::new(2).with_placement(OutOfRange);
        let ws = windows(1, 0);
        let err = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Placement {
                    index: 5,
                    arrays: 2
                }
            ),
            "expected Placement, got {err:?}"
        );
        // Nothing ran, and the pool recovers with a sane strategy.
        pool.set_placement(ResidencyAware);
        assert_eq!(pool.placement_name(), "residency-aware");
        pool.run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn empty_fan_out_is_free() {
        let mut pool = Pool::new(3);
        let (outputs, report) = pool
            .run_batch(std::iter::empty::<(&BakedScaleKernel, Vec<&[i32]>)>())
            .unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.jobs, 0);
        assert_eq!(report.wall_cycles(), 0);
        assert_eq!(report.occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_array_pools_are_rejected() {
        let _ = Pool::new(0);
    }
}
