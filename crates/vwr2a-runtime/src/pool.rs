//! Heterogeneous backend pool: fan `(kernel, windows)` jobs across CGRA
//! arrays, the fixed-function FFT engine and the host CPU behind one
//! residency-aware scheduler.
//!
//! # The scheduling model
//!
//! A [`Pool`] owns N independent [`Backend`]s — CGRA arrays (each a full
//! [`Session`] with its own `Vwr2a`, configuration memory and eviction
//! policy, see [`crate::backend::ArrayBackend`]), and optionally the
//! fixed-function FFT engine ([`crate::backend::FftBackend`]) and the
//! Cortex-M4 host ([`crate::backend::CpuBackend`]).  A *job* is one
//! `(kernel, windows)` workload: a kernel plus the window stream to run
//! through it.  [`Pool::run_batch`] / [`Pool::run_stream`] place each job
//! on one backend via the pool's [`Placement`] strategy and execute its
//! windows there on the backend's own pipelined [`StreamSchedule`]
//! (staging overlapped with compute, exactly like
//! [`Session::run_stream`]).
//!
//! Placement is where the fleet either wins or loses: a kernel's program
//! must be *resident* in an array's configuration memory to launch warm,
//! so routing a job to an array that already holds its program skips the
//! configuration-word streaming entirely, while a residency-blind router
//! keeps paying cold reloads (and, under capacity pressure, keeps evicting
//! other jobs' programs).  A kernel may additionally advertise non-CGRA
//! implementations through [`Kernel::offload`] — an FFT shape the
//! fixed-function engine can run, a host-CPU routine for jobs too small to
//! amortise an array reload — and the pool prices those backends from
//! their own cycle models next to the arrays.  A strategy returns a
//! [`PlacementPlan`]: the target backend, plus an optional
//! [`PrefetchDirective`] that makes the pool stage the job's configuration
//! words *speculatively* ([`Session::prefetch`]) on the target's
//! [`StreamSchedule`] before the job's first window — the reload streams
//! on the otherwise-idle configuration-load lane, overlapping the array's
//! compute backlog, and the launch itself finds the program warm.  Four
//! strategies ship with the pool:
//!
//! * [`CostAware`] — the default: estimates, for every backend the job is
//!   *eligible* on ([`BackendView::eligible`]), when the job would
//!   complete — reload cost ([`BackendView::reload_cycles`]) against
//!   compute backlog ([`BackendView::free_compute_at`]), plus the
//!   backend's modelled per-window cycles
//!   ([`BackendView::window_cycles`], the pool's learned per-key estimate
//!   for arrays) — and routes the job to the cheapest completion,
//!   directing a prefetch whenever a chosen *array* would otherwise
//!   reload cold.  On an all-array fleet this reduces exactly to PR 5's
//!   cost model; with offload backends present it is what routes FFT jobs
//!   to the FFT engine and reload-dominated crumbs to the CPU.
//! * [`ResidencyAware`] — PR 4's scheduler, kept as the prefetch-less
//!   comparison point: prefer backends with the job's program resident,
//!   tie-breaking on the earliest-free compute engine; replicate onto
//!   fully idle backends rather than queue behind busy resident copies.
//! * [`RoundRobin`] — job *i* goes to eligible backend *i mod E*,
//!   residency-blind.  The baseline the `pool` bench bin compares against.
//! * [`LeastLoaded`] — route to the eligible backend with the fewest
//!   cumulative compute-busy cycles, balancing load without looking at
//!   residency.
//!
//! Outputs are **bit-identical** to running every job serially on one
//! session, for every strategy, with or without prefetch — placement only
//! moves *where* (and overlap and prefetch only *when*) the
//! already-verified work executes.  Kernels implementing
//! [`Kernel::execute_fft`] / [`Kernel::execute_cpu`] owe the same
//! guarantee per backend, and [`FleetReport::routes`] records which
//! backend served each job so equivalence tests can hold them to it.  The
//! merged [`FleetReport`] exposes what placement changed: per-backend busy
//! and wall cycles, the fleet wall clock (max over backends), compute
//! occupancy, the cold-reload count, how many reloads were prefetched
//! ([`FleetReport::prefetched`]) or fully hidden inside compute backlogs
//! ([`FleetReport::hidden_reloads`]), and per-kind attribution rows
//! ([`FleetReport::per_kind`]).
//!
//! # Example
//!
//! ```
//! use vwr2a_runtime::pool::Pool;
//! use vwr2a_runtime::testing::BakedScaleKernel;
//!
//! # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
//! let mut pool = Pool::new(2); // two arrays, cost-aware placement
//! let double = BakedScaleKernel::new(2);
//! let triple = BakedScaleKernel::new(3);
//! let windows: Vec<Vec<i32>> = (0..4).map(|w| vec![w; 32]).collect();
//!
//! let jobs = [&double, &triple, &double, &triple]
//!     .map(|kernel| (kernel, windows.iter().map(Vec::as_slice)));
//! let (outputs, fleet) = pool.run_batch(jobs)?;
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(outputs[0][0], vec![0; 32]);
//! // Each program's one reload was *prefetched* onto the array the job
//! // was routed to, off the launch's critical path: no launch ever went
//! // cold, and the repeat jobs found their programs resident and warm.
//! assert_eq!(fleet.cold_reloads(), 0);
//! assert_eq!(fleet.prefetched(), 2);
//! assert_eq!(fleet.warm_launches(), 16);
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;

use vwr2a_core::timeline::Engine;
use vwr2a_energy::EnergyModel;

use crate::backend::{run_window_on, ArrayBackend, Backend, BackendKind};
use crate::error::{Result, RuntimeError};
use crate::pipeline::StreamSchedule;
use crate::report::{ArrayReport, FleetReport, JobRoute, RunReport};
use crate::session::{Kernel, Session};

/// What a [`Placement`] strategy sees about the job being placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobView<'a> {
    /// Submission index of the job (0-based, in fan-out order).
    pub index: usize,
    /// The job kernel's [`Kernel::cache_key`] — program identity, i.e.
    /// what residency is tracked by.
    pub cache_key: &'a str,
    /// Lower-bound size hint of the job's window stream (exact for slices,
    /// `Vec`s and other exact-size iterators; `0` for opaque streams).
    /// The pool iterates windows lazily, so the true count is only known
    /// once the job has run.
    pub windows: usize,
    /// Configuration-word footprint of the job's program on the first
    /// array backend whose geometry can build it ([`Kernel::config_words`],
    /// cached per cache key and backend by the pool) — the scalar reload
    /// cost for strategies that do not price per backend.  Per-backend
    /// pricing lives in [`BackendView::reload_cycles`]; in a
    /// mixed-geometry fleet the two may differ.
    pub config_words: usize,
    /// Capability classes the job belongs to, as a mask of
    /// [`crate::backend::CAP_CGRA`] / [`crate::backend::CAP_FFT`] /
    /// [`crate::backend::CAP_CPU`] bits ([`crate::backend::Offload::classes`]).
    pub classes: u32,
    /// The pool's learned per-window compute estimate for this cache key
    /// on a CGRA array (mean observed compute cycles; `0` before the key
    /// has ever run) — what [`CostAware`] compares against an offload
    /// backend's modelled [`BackendView::window_cycles`].
    pub window_cycles_hint: u64,
    /// Estimated energy of one window of this job on a CGRA array, in
    /// nanojoules — the learned [`JobView::window_cycles_hint`] priced at
    /// the calibrated array power ([`vwr2a_energy::EnergyModel::
    /// array_window_nj`]; `0` before the key has ever run).  The array
    /// counterpart of [`BackendView::window_energy_nj`].
    pub window_energy_hint_nj: u64,
    /// Absolute deadline cycle of the job on the caller's timeline, when
    /// one exists — the serving layer passes each ticket's deadline so
    /// [`Objective::EnergyUnderDeadline`] can minimise joules among the
    /// backends that still meet it.  `None` for batch fan-outs and
    /// deadline-less tickets.
    pub deadline: Option<u64>,
}

/// What a [`Placement`] strategy sees about one backend of the pool at the
/// moment a job is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendView {
    /// Index of the backend in the pool.
    pub index: usize,
    /// What kind of execution substrate this backend is.
    pub kind: BackendKind,
    /// The backend's capability mask ([`Backend::capabilities`]).
    pub capabilities: u32,
    /// `true` if the job's program is resident on this backend
    /// ([`Backend::is_resident`]).
    pub resident: bool,
    /// `true` if a launch of the job here would pay no configuration
    /// reload ([`Backend::is_warm`]).
    pub warm: bool,
    /// First cycle at which this backend's compute engine is free on its
    /// current wave schedule
    /// ([`StreamSchedule::free_at`](crate::pipeline::StreamSchedule::free_at)
    /// on [`Engine::Compute`]).
    pub free_compute_at: u64,
    /// First cycle at which this backend's configuration-load lane is free
    /// on its current wave schedule ([`Engine::ConfigLoad`]): a prefetch
    /// directed here streams no earlier than this, queueing behind the
    /// wave's previous reloads — cost models that ignore it over-replicate
    /// onto arrays whose configuration streamer is already the bottleneck.
    pub free_config_at: u64,
    /// The backend's cumulative compute-busy cycles over its whole
    /// lifetime ([`Backend::busy_compute`]) — the cross-wave load metric.
    pub busy_compute: u64,
    /// Distinct programs resident on the backend.
    pub loaded_programs: usize,
    /// Cycles a cold configuration reload of this job would stream *on
    /// this backend* (per-geometry for arrays; `Some(0)` for offload
    /// backends, which have no configuration memory) — or `None` if the
    /// backend cannot serve this job at all: its capability mask misses
    /// the job's classes, or its array geometry cannot build the program.
    pub reload_cycles: Option<u64>,
    /// The backend's own modelled cycles for one window of this job
    /// ([`Backend::window_cycles`]; `None` for arrays, whose per-window
    /// cost is learned from observation — see
    /// [`JobView::window_cycles_hint`]).
    pub window_cycles: Option<u64>,
    /// Estimated energy of streaming this job's cold configuration reload
    /// on this backend, in nanojoules (`Some(0)` for offload backends,
    /// which have no configuration memory; `None` when the backend cannot
    /// serve the job — mirrors [`BackendView::reload_cycles`]).
    pub reload_energy_nj: Option<u64>,
    /// The backend's own modelled energy for one window of this job, in
    /// nanojoules ([`Backend::window_energy_nj`]; `None` for arrays —
    /// their estimate is [`JobView::window_energy_hint_nj`]).
    pub window_energy_nj: Option<u64>,
}

impl BackendView {
    /// `true` if this backend can serve the job being placed (see
    /// [`BackendView::reload_cycles`]).  Routing a job to an ineligible
    /// backend aborts the fan-out with a typed error
    /// ([`RuntimeError::MixedGeometry`] for arrays,
    /// [`RuntimeError::Capability`] otherwise).
    pub fn eligible(&self) -> bool {
        self.reload_cycles.is_some()
    }

    /// The modelled per-window energy in microjoules
    /// ([`BackendView::window_energy_nj`] scaled for display).
    pub fn window_energy_uj(&self) -> Option<f64> {
        self.window_energy_nj.map(|nj| nj as f64 / 1e3)
    }
}

/// The views a strategy may actually route the job to: backends that are
/// [`BackendView::eligible`].  Falls back to the full slice if nothing is
/// eligible — the pool rejects such jobs before consulting the strategy,
/// so the fallback is purely defensive.
fn serviceable(backends: &[BackendView]) -> Vec<BackendView> {
    let eligible: Vec<BackendView> = backends.iter().filter(|b| b.eligible()).copied().collect();
    if eligible.is_empty() {
        backends.to_vec()
    } else {
        eligible
    }
}

/// Directs the pool to stage a job's program speculatively before the
/// job's first window runs (see [`PlacementPlan`]).
///
/// The pool executes the directive by calling [`Session::prefetch`] on the
/// named backend's session and replaying the streamed cycles on that
/// backend's [`StreamSchedule::prefetch`] lane — where they overlap the
/// array's compute backlog instead of sitting on the launch's critical
/// path.  Staging an already-warm program is a no-op, and a directive
/// naming an offload backend (which has no configuration memory to stage
/// into) is skipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchDirective {
    /// Backend whose session stages the program (normally the plan's
    /// target; a strategy may warm a different array, e.g. to replicate a
    /// hot program ahead of anticipated load).
    pub backend: usize,
}

/// What a [`Placement`] strategy decides for one job: where it runs, and
/// whether its configuration reload is staged speculatively first.
///
/// Returned by [`Placement::place`].  Both the target backend and a
/// directive's backend must be valid indices; an out-of-range index aborts
/// the fan-out with [`RuntimeError::Placement`] (the pool stays valid and
/// reusable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Backend that runs the job's windows.
    pub backend: usize,
    /// Optional speculative configuration staging executed before the
    /// job's first window.
    pub prefetch: Option<PrefetchDirective>,
}

impl PlacementPlan {
    /// A plan that just runs the job on `backend`, reload (if any) on the
    /// launch's critical path — the pre-prefetch behaviour.
    pub fn run_on(backend: usize) -> Self {
        Self {
            backend,
            prefetch: None,
        }
    }

    /// A plan that stages the job's program on `backend` ahead of running
    /// the job there, so a would-be cold reload streams off the critical
    /// path and the launch finds the program warm.
    pub fn with_prefetch(backend: usize) -> Self {
        Self {
            backend,
            prefetch: Some(PrefetchDirective { backend }),
        }
    }
}

/// Chooses which backend of a [`Pool`] runs a job — and whether the job's
/// configuration reload is prefetched ahead of its launch.
///
/// The strategy is consulted once per job, in submission order, with a
/// fresh snapshot of every backend — so residency and timeline effects of
/// earlier placements (including prefetches) are visible.  Views with
/// [`BackendView::eligible`] `false` cannot serve the job; the shipped
/// strategies filter them out, and custom strategies should too (routing
/// to one is a typed error).  It returns a [`PlacementPlan`]; any
/// out-of-range backend index in the plan aborts the fan-out with
/// [`RuntimeError::Placement`] (the pool stays valid and reusable).
/// Strategies must be deterministic so fleet experiments are reproducible.
pub trait Placement: fmt::Debug + Send {
    /// Short strategy name used in reports and bench tables.
    fn name(&self) -> &'static str;

    /// Returns the plan for `job`: target backend plus optional prefetch.
    ///
    /// `backends` is never empty (a pool has at least one backend).
    fn place(&self, job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan;
}

/// Residency-aware placement: prefer backends that already hold the job's
/// program, tie-break on the earliest-free compute engine.
///
/// A job whose program is resident *somewhere* goes to the resident
/// backend whose compute engine frees earliest (warm launch, no
/// configuration streaming).  A program nobody holds yet goes to the
/// earliest-free eligible backend overall — which both balances load and
/// spreads distinct programs across the fleet, so the steady state keeps
/// every program resident on "its" array instead of thrashing one
/// configuration memory.  One refinement keeps affinity from starving the
/// fleet: when every resident backend is busy but some backend is still
/// completely *idle* this wave, the job is placed there instead — the cold
/// reload replicates the program onto the idle array, and from then on
/// both copies serve warm launches (without this, a two-program workload
/// would leave half of a four-array fleet permanently idle).  Ties resolve
/// to the lowest backend index, keeping placement deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyAware;

impl Placement for ResidencyAware {
    fn name(&self) -> &'static str {
        "residency-aware"
    }

    fn place(&self, _job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
        let candidates = serviceable(backends);
        // Ties on the wave-local free time (e.g. every backend idle at the
        // start of a wave) break on the lifetime compute load, so a
        // sequence of single-job waves still spreads first-seen programs
        // across the fleet instead of piling them onto backend 0.
        let earliest_free = |candidates: &mut dyn Iterator<Item = &BackendView>| {
            candidates
                .min_by_key(|a| (a.free_compute_at, a.busy_compute, a.index))
                .copied()
        };
        let best_any =
            earliest_free(&mut candidates.iter()).expect("a pool has at least one backend");
        PlacementPlan::run_on(
            match earliest_free(&mut candidates.iter().filter(|a| a.resident)) {
                // Busy resident copies, but an idle backend is available:
                // replicate rather than queue.
                Some(resident) if resident.free_compute_at > 0 && best_any.free_compute_at == 0 => {
                    best_any.index
                }
                Some(resident) => resident.index,
                None => best_any.index,
            },
        )
    }
}

/// What [`CostAware`] minimises when it ranks a job's capable backends.
///
/// Every variant prices the same two per-backend estimates — completion
/// (cycles until the job's last window finishes there) and energy (the
/// cold reload if the program is not warm, plus windows at the backend's
/// modelled or learned per-window energy) — and differs only in how the
/// two are combined.  The default [`Objective::Cycles`] reproduces the
/// pre-energy behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Earliest estimated completion — wall cycles alone (the historical
    /// behaviour, and the default).
    #[default]
    Cycles,
    /// Fewest estimated nanojoules, ties broken by earlier completion.
    /// Ignores backlog-induced waiting entirely — throughput may suffer.
    Energy,
    /// Smallest energy × completion product — the paper's headline
    /// figure of merit, trading a little latency for large energy wins
    /// (and vice versa) without a tuning knob.
    EnergyDelayProduct,
    /// Fewest estimated nanojoules *among the backends that still meet
    /// the job's deadline* ([`JobView::deadline`]); if no backend can, the
    /// earliest completion limits the damage, and deadline-less jobs fall
    /// back to [`Objective::EnergyDelayProduct`].
    EnergyUnderDeadline,
}

/// Cost-based placement with speculative prefetch — the pool's default.
///
/// For every eligible backend the strategy estimates when the job would
/// *complete*: first the earliest cycle its first window could start
/// computing — the backend's compute backlog
/// ([`BackendView::free_compute_at`]), or the reload's streaming time
/// ([`BackendView::reload_cycles`], one word per cycle on an array; zero
/// on offload backends) when the program is not warm there — whichever
/// ends later, because a prefetched reload streams *concurrently* with
/// the backlog on the configuration-load lane; then the windows
/// themselves, at the backend's modelled per-window cost
/// ([`BackendView::window_cycles`]) or, for arrays, the pool's learned
/// estimate for the kernel ([`JobView::window_cycles_hint`]).  It also
/// estimates what the job would *cost in joules* there: the cold reload's
/// streaming energy ([`BackendView::reload_energy_nj`]) plus windows at
/// the backend's modelled per-window energy
/// ([`BackendView::window_energy_nj`] /
/// [`JobView::window_energy_hint_nj`]).  The [`Objective`] decides how
/// the two estimates rank the candidates; under the default
/// [`Objective::Cycles`] the job goes to the backend with the earliest
/// completion (ties break on the earlier compute start, then the lower
/// combined pressure `backlog + reload`, then lifetime compute load, then
/// index — deterministic).  Whatever the objective, a chosen *array* that
/// would otherwise reload on the launch's critical path gets a
/// [`PrefetchDirective`].
///
/// On an all-array fleet every candidate prices windows at the same
/// learned hint, so the completion term cancels and the choice reduces
/// exactly to the PR 5 cost model (reload versus backlog, prefetch the
/// rest).  With offload backends present, the completion term is what
/// sends an FFT-shaped job to the fixed-function engine when the arrays
/// are cold or backlogged, and a tiny job to the always-warm CPU when its
/// array reload would dominate — and the energy objectives keep FFT jobs
/// on the engine (≈ 5× fewer nJ per cycle than an array) even when a
/// backlogged queue makes an array finish sooner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostAware {
    objective: Objective,
}

impl CostAware {
    /// Cost-aware placement minimising the given [`Objective`].
    pub fn with_objective(objective: Objective) -> Self {
        Self { objective }
    }

    /// The objective this strategy minimises.
    pub fn objective(&self) -> Objective {
        self.objective
    }
}

impl Placement for CostAware {
    fn name(&self) -> &'static str {
        match self.objective {
            Objective::Cycles => "cost-aware",
            Objective::Energy => "cost-aware/energy",
            Objective::EnergyDelayProduct => "cost-aware/edp",
            Objective::EnergyUnderDeadline => "cost-aware/energy-deadline",
        }
    }

    fn place(&self, job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
        let candidates = serviceable(backends);
        let reload_price = |a: &BackendView| a.reload_cycles.unwrap_or(job.config_words as u64);
        let reload = |a: &BackendView| if a.warm { 0 } else { reload_price(a) };
        // Earliest estimated compute start on this backend: a prefetched
        // reload queues on the configuration-load lane (behind the wave's
        // earlier reloads) and streams concurrently with the compute
        // backlog — the job starts when the later of the two finishes.
        let ready_at = |a: &BackendView| {
            let reload_done = if a.warm {
                0
            } else {
                a.free_config_at + reload_price(a)
            };
            a.free_compute_at.max(reload_done)
        };
        let completion = |a: &BackendView| {
            let per_window = a.window_cycles.unwrap_or(job.window_cycles_hint);
            ready_at(a) + job.windows as u64 * per_window
        };
        let energy = |a: &BackendView| {
            let per_window = a.window_energy_nj.unwrap_or(job.window_energy_hint_nj);
            let reload_nj = if a.warm {
                0
            } else {
                a.reload_energy_nj.unwrap_or(0)
            };
            reload_nj + job.windows as u64 * per_window
        };
        // Energy × delay in u128: both factors are u64, the product must
        // not wrap for long backlogs.
        let edp = |a: &BackendView| u128::from(energy(a)) * u128::from(completion(a));
        // The deterministic tail every objective tie-breaks through (the
        // historical cycles ordering).
        let tail = |a: &BackendView| {
            (
                completion(a),
                ready_at(a),
                // Prefer the cheaper total pressure on ties.
                a.free_compute_at + reload(a),
                a.busy_compute,
                a.index,
            )
        };
        let min_energy = |views: &mut dyn Iterator<Item = &BackendView>| {
            views.min_by_key(|a| (energy(a), tail(a))).copied()
        };
        let min_edp = |views: &mut dyn Iterator<Item = &BackendView>| {
            views.min_by_key(|a| (edp(a), tail(a))).copied()
        };
        let chosen = match self.objective {
            Objective::Cycles => candidates.iter().min_by_key(|a| tail(a)).copied(),
            Objective::Energy => min_energy(&mut candidates.iter()),
            Objective::EnergyDelayProduct => min_edp(&mut candidates.iter()),
            Objective::EnergyUnderDeadline => match job.deadline {
                // Cheapest joules among the backends that still make the
                // deadline; nobody can -> earliest completion limits the
                // damage.
                Some(deadline) => {
                    min_energy(&mut candidates.iter().filter(|a| completion(a) <= deadline))
                        .or_else(|| candidates.iter().min_by_key(|a| tail(a)).copied())
                }
                None => min_edp(&mut candidates.iter()),
            },
        }
        .expect("a pool has at least one backend");
        if chosen.warm || chosen.kind != BackendKind::Array {
            PlacementPlan::run_on(chosen.index)
        } else {
            PlacementPlan::with_prefetch(chosen.index)
        }
    }
}

/// Residency-blind baseline: job *i* runs on eligible backend *i mod E*
/// (of the E backends that can serve it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl Placement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&self, job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
        let candidates = serviceable(backends);
        PlacementPlan::run_on(candidates[job.index % candidates.len()].index)
    }
}

/// Load-balancing placement: route to the eligible backend with the
/// fewest cumulative compute-busy cycles (ties to the lowest index).
/// Ignores residency — useful as the "balanced but residency-blind"
/// comparison point between [`RoundRobin`] and [`ResidencyAware`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&self, _job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
        PlacementPlan::run_on(
            serviceable(backends)
                .iter()
                .min_by_key(|a| (a.busy_compute, a.index))
                .map(|a| a.index)
                .expect("a pool has at least one backend"),
        )
    }
}

/// One backend's admission-time price for a job — the cycles *and*
/// joules columns that seed [`BackendView`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BackendPrice {
    /// Cold-reload streaming cycles; `None` = the backend cannot serve
    /// the job, `Some(0)` = eligible with no reload (offload backends).
    pub reload_cycles: Option<u64>,
    /// Modelled per-window cycles (offload backends; arrays use the
    /// pool's learned hint instead).
    pub window_cycles: Option<u64>,
    /// Energy of the cold reload in nanojoules (config-word streaming on
    /// an array; `Some(0)` on eligible offload backends).
    pub reload_energy_nj: Option<u64>,
    /// Modelled per-window energy in nanojoules (offload backends).
    pub window_energy_nj: Option<u64>,
}

impl BackendPrice {
    /// The "cannot serve" price.
    pub(crate) const INELIGIBLE: Self = Self {
        reload_cycles: None,
        window_cycles: None,
        reload_energy_nj: None,
        window_energy_nj: None,
    };

    /// Whether the backend can serve the job at all.
    pub(crate) fn eligible(&self) -> bool {
        self.reload_cycles.is_some()
    }
}

/// Per-job, per-backend pricing computed once at admission: which
/// backends can serve the job, and at what reload / per-window cost (the
/// raw material of [`BackendView`]; shared with the serving layer, which
/// prices at admission and places at dispatch).
#[derive(Debug, Clone)]
pub(crate) struct JobPricing {
    /// Capability classes of the job ([`crate::backend::Offload::classes`]).
    pub classes: u32,
    /// Scalar reload cost: the footprint on the first array backend whose
    /// geometry builds the program (`0` in an all-offload fleet).
    pub config_words: usize,
    /// Per backend, in pool order — see [`BackendPrice`].
    pub per_backend: Vec<BackendPrice>,
}

/// A fleet of [`Backend`]s behind one [`Placement`] scheduler.
///
/// Every fan-out call ([`Pool::run_batch`] / [`Pool::run_stream`]) is one
/// *wave*: each backend starts the wave with an empty [`StreamSchedule`]
/// (its engines free at cycle 0), jobs are placed and run in submission
/// order, and the wave's merged [`FleetReport`] is returned.  *Residency
/// persists across waves*: the sessions keep their loaded programs, so a
/// later wave's jobs launch warm wherever earlier waves already placed
/// their programs.  [`Pool::stats`] accumulates the per-backend accounting
/// over all waves.
///
/// See the [module docs](crate::pool) for the scheduling model and a
/// runnable example.
#[derive(Debug)]
pub struct Pool {
    backends: Vec<Box<dyn Backend>>,
    placement: Box<dyn Placement>,
    stats: FleetReport,
    /// Per-backend configuration-word footprints by [`Kernel::cache_key`]
    /// (`None` = the backend's geometry cannot build the program), so a
    /// program's [`Kernel::config_words`] is computed once per key and
    /// geometry rather than once per job (the hook may build the whole
    /// program to count).
    footprints: Vec<HashMap<String, Option<usize>>>,
    /// Observed per-window compute cycles by cache key on CGRA arrays:
    /// `(total cycles, windows)` — the learned estimate [`CostAware`]
    /// weighs against offload backends' modelled costs.
    estimates: HashMap<String, (u64, u64)>,
}

impl Pool {
    /// Creates a pool of `arrays` default sessions (paper geometry, LRU
    /// eviction) with the default [`CostAware`] placement.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        Self::with_sessions((0..arrays).map(|_| Session::new()).collect())
            .expect("all-array fleets are always legal")
    }

    /// Creates an all-array pool over custom sessions (constrained or
    /// mixed geometries, custom eviction policies) with the default
    /// [`CostAware`] placement.
    ///
    /// Mixed geometries across the fleet are legal: each backend prices a
    /// kernel's reload against *its own* geometry
    /// ([`BackendView::reload_cycles`]), and a kernel whose program cannot
    /// be built for some backend's geometry is simply ineligible there.  A
    /// kernel no backend can take fails per job, as
    /// [`RuntimeError::MixedGeometry`].
    ///
    /// # Errors
    ///
    /// Never errs today; the `Result` is kept so fleet-construction
    /// validation can return typed errors without breaking callers.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty.
    pub fn with_sessions(sessions: Vec<Session>) -> Result<Self> {
        Ok(Self::with_backends(
            sessions
                .into_iter()
                .map(|s| Box::new(ArrayBackend::new(s)) as Box<dyn Backend>)
                .collect(),
        ))
    }

    /// Creates a pool over an explicit set of backends (arrays, the FFT
    /// engine, the host CPU — in any mix) with the default [`CostAware`]
    /// placement.
    ///
    /// # Panics
    ///
    /// Panics if `backends` is empty.
    pub fn with_backends(backends: Vec<Box<dyn Backend>>) -> Self {
        assert!(!backends.is_empty(), "a pool needs at least one backend");
        let kinds: Vec<BackendKind> = backends.iter().map(|b| b.kind()).collect();
        let footprints = backends.iter().map(|_| HashMap::new()).collect();
        Self {
            backends,
            placement: Box::new(CostAware::default()),
            stats: FleetReport::for_kinds(&kinds),
            footprints,
            estimates: HashMap::new(),
        }
    }

    /// Appends a backend to the fleet, builder-style — how the FFT engine
    /// and the host CPU join an array pool.
    #[must_use]
    pub fn with_backend(mut self, backend: impl Backend + 'static) -> Self {
        self.push_backend(Box::new(backend));
        self
    }

    /// Appends a backend to the fleet.  Existing residency, accumulated
    /// statistics and the placement strategy are unaffected; the new
    /// backend starts idle.
    pub fn push_backend(&mut self, backend: Box<dyn Backend>) {
        let index = self.backends.len();
        self.stats.arrays.push(ArrayReport {
            array: index,
            kind: backend.kind(),
            jobs: 0,
            report: RunReport::new(format!("{}-{index}", backend.kind().label())),
        });
        self.footprints.push(HashMap::new());
        self.backends.push(backend);
    }

    /// Replaces the placement strategy, builder-style.
    #[must_use]
    pub fn with_placement(mut self, placement: impl Placement + 'static) -> Self {
        self.set_placement(placement);
        self
    }

    /// Replaces the placement strategy (resident programs are unaffected).
    pub fn set_placement(&mut self, placement: impl Placement + 'static) {
        self.placement = Box::new(placement);
    }

    /// Name of the active placement strategy.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Number of backends in the pool (kept under its historical name —
    /// before PR 7 every backend was an array).
    pub fn arrays(&self) -> usize {
        self.backends.len()
    }

    /// One backend of the fleet (kind, residency and capability
    /// inspection).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn backend(&self, index: usize) -> &dyn Backend {
        self.backends[index].as_ref()
    }

    /// The session behind one CGRA-array backend (residency inspection,
    /// tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the backend is not an array.
    pub fn array(&self, index: usize) -> &Session {
        self.backends[index]
            .as_session()
            .expect("backend is a CGRA array")
    }

    /// Mutable backend access for the serving layer's per-window executor
    /// (which replays phases on its own schedules, like [`Pool::fan_out`]).
    pub(crate) fn backend_mut(&mut self, index: usize) -> &mut dyn Backend {
        self.backends[index].as_mut()
    }

    /// The active placement strategy — the serving layer re-consults it on
    /// dispatch and on every work-stealing re-route.
    pub(crate) fn strategy(&self) -> &dyn Placement {
        &*self.placement
    }

    /// Announces `keys` as needed-soon on every CGRA-array session of the
    /// fleet (see [`Session::set_needed_soon`]); an empty set clears the
    /// announcement.  Offload backends have no configuration memory and
    /// ignore it.  The serving layer's lookahead planner derives the set
    /// from its admission and run queues each scheduling round.
    pub(crate) fn set_needed_soon(&mut self, keys: &std::collections::HashSet<String>) {
        for backend in &mut self.backends {
            if let Some(session) = backend.as_session_mut() {
                session.set_needed_soon(keys.iter().cloned());
            }
        }
    }

    /// Announces the needed-soon set on a single backend (no-op for
    /// backends without a session) — the serving planner announces each
    /// backend's own run queue, not a fleet-wide union.
    pub(crate) fn set_needed_soon_on(
        &mut self,
        index: usize,
        keys: impl IntoIterator<Item = String>,
    ) {
        if let Some(session) = self.backends[index].as_session_mut() {
            session.set_needed_soon(keys);
        }
    }

    /// Evictions the needed-soon shield redirected, summed over the
    /// fleet's array sessions (see [`Session::evictions_averted`]).
    pub(crate) fn evictions_averted(&self) -> u64 {
        self.backends
            .iter()
            .filter_map(|b| b.as_session())
            .map(Session::evictions_averted)
            .sum()
    }

    /// An empty wave report shaped like this fleet (one entry per backend,
    /// labelled by kind).
    pub(crate) fn blank_wave(&self) -> FleetReport {
        let kinds: Vec<BackendKind> = self.backends.iter().map(|b| b.kind()).collect();
        FleetReport::for_kinds(&kinds)
    }

    /// Folds one externally-built wave (the serving layer's) into the
    /// pool's accumulated [`Pool::stats`].
    pub(crate) fn absorb_stats(&mut self, wave: &FleetReport) {
        self.stats.absorb(wave);
    }

    /// Accumulated fleet accounting over every wave run so far (per-backend
    /// wall clocks add across waves, as if the waves ran back to back).
    pub fn stats(&self) -> &FleetReport {
        &self.stats
    }

    /// Fans a batch of `(kernel, windows)` jobs across the fleet and
    /// collects each job's outputs, in window order, grouped by job in
    /// submission order.
    ///
    /// Outputs are bit-identical to running every job serially on one
    /// [`Session`] — for any placement strategy, on whichever backend each
    /// job lands (kernels owe the same equivalence on their offload paths;
    /// see [`Kernel::execute_fft`] / [`Kernel::execute_cpu`]).  The
    /// returned [`FleetReport`] carries this wave's per-backend and
    /// fleet-level accounting, including the per-job routing record.
    ///
    /// # Errors
    ///
    /// As [`Session::run`] on the chosen backend, plus
    /// [`RuntimeError::Placement`] if the strategy returns an out-of-range
    /// backend index, [`RuntimeError::MixedGeometry`] if a job is routed
    /// to (or servable by no) array whose geometry cannot build its
    /// program, and [`RuntimeError::Capability`] if a job is routed to an
    /// offload backend that cannot serve it.  The first error aborts the
    /// fan-out; the pool and its backends stay valid and reusable.
    #[allow(clippy::type_complexity)]
    pub fn run_batch<'k, K, J, W>(&mut self, jobs: J) -> Result<(Vec<Vec<K::Output>>, FleetReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let jobs: Vec<(&K, W)> = jobs.into_iter().collect();
        let mut outputs: Vec<Vec<K::Output>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        let report = self.run_stream(jobs, |job, output| {
            outputs[job].push(output);
            Ok(())
        })?;
        Ok((outputs, report))
    }

    /// Streams a fan-out of `(kernel, windows)` jobs across the fleet,
    /// handing each output to `sink` together with its job's submission
    /// index, as soon as it is computed (jobs execute in submission order;
    /// within a job, windows in window order).
    ///
    /// # Errors
    ///
    /// As [`Pool::run_batch`]; an error returned by `sink` aborts the
    /// fan-out as [`RuntimeError::Sink`] does for [`Session::run_stream`].
    /// Work performed before the abort — cold reloads, invocations, busy
    /// cycles — is still folded into [`Pool::stats`], matching the
    /// sessions' own accounting of failed invocations.
    pub fn run_stream<'k, K, J, W, F>(&mut self, jobs: J, sink: F) -> Result<FleetReport>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let backends = self.backends.len();
        let mut schedules: Vec<StreamSchedule> =
            (0..backends).map(|_| StreamSchedule::new()).collect();
        let mut wave = self.blank_wave();

        let result = self.fan_out(jobs, sink, &mut wave, &mut schedules);
        for (backend, schedule) in wave.arrays.iter_mut().zip(schedules) {
            let timeline = schedule.finish();
            backend.report.wall_cycles = timeline.wall_cycles();
            backend.report.busy = timeline.occupancy();
        }
        // The wave's accounting survives an abort: the backends did the
        // work, so the fleet statistics must show it.
        self.stats.absorb(&wave);
        result.map(|()| wave)
    }

    /// Configuration-word footprint of `kernel`'s program against backend
    /// `index`'s own geometry, cached per cache key and backend across
    /// jobs and waves.  `None` if the backend has no geometry (offload
    /// backends) or its geometry cannot build the program.
    fn footprint<K: Kernel>(&mut self, index: usize, kernel: &K, key: &str) -> Option<usize> {
        if let Some(&cached) = self.footprints[index].get(key) {
            return cached;
        }
        let geometry = self.backends[index].geometry().copied();
        let words = geometry.and_then(|g| kernel.config_words(&g).ok());
        self.footprints[index].insert(key.to_string(), words);
        words
    }

    /// The pool's learned per-window compute estimate for `key` on a CGRA
    /// array (mean observed compute cycles; `0` before the key has run).
    fn window_hint(&self, key: &str) -> u64 {
        self.estimates
            .get(key)
            .map(|&(cycles, windows)| (cycles / windows.max(1)).max(1))
            .unwrap_or(0)
    }

    /// The learned hint's energy companion: the mean observed array window,
    /// priced at the array's average power (`0` before the key has run, like
    /// [`Pool::window_hint`]).
    fn window_energy_hint(&self, key: &str) -> u64 {
        match self.window_hint(key) {
            0 => 0,
            cycles => EnergyModel::calibrated().array_window_nj(cycles),
        }
    }

    /// Prices `kernel` against every backend of the fleet (see
    /// [`JobPricing`]).  Errs if *no* backend can serve the job:
    /// [`RuntimeError::MixedGeometry`] naming the first array whose
    /// geometry failed, or [`RuntimeError::Capability`] when the fleet has
    /// no backend matching the job's classes at all.
    pub(crate) fn price_job<K: Kernel>(&mut self, kernel: &K, key: &str) -> Result<JobPricing> {
        let offload = kernel.offload();
        let classes = offload.classes();
        let model = EnergyModel::calibrated();
        let mut per_backend = Vec::with_capacity(self.backends.len());
        let mut config_words = None;
        let mut geometry_failure = None;
        for index in 0..self.backends.len() {
            let entry = match self.backends[index].kind() {
                BackendKind::Array => {
                    let words = self.footprint(index, kernel, key);
                    if words.is_none() && geometry_failure.is_none() {
                        geometry_failure = Some(index);
                    }
                    if config_words.is_none() {
                        config_words = words;
                    }
                    BackendPrice {
                        reload_cycles: words.map(|w| w as u64),
                        window_cycles: None,
                        reload_energy_nj: words.map(|w| model.array_reload_nj(w as u64)),
                        window_energy_nj: None,
                    }
                }
                _ => {
                    if self.backends[index].capabilities() & classes == 0 {
                        BackendPrice::INELIGIBLE
                    } else {
                        // An offload backend has no configuration memory:
                        // eligibility and per-window cost both come from
                        // its own model.
                        let window = self.backends[index].window_cycles(&offload);
                        BackendPrice {
                            reload_cycles: window.map(|_| 0),
                            window_cycles: window,
                            reload_energy_nj: window.map(|_| 0),
                            window_energy_nj: self.backends[index].window_energy_nj(&offload),
                        }
                    }
                }
            };
            per_backend.push(entry);
        }
        if !per_backend.iter().any(BackendPrice::eligible) {
            return Err(match geometry_failure {
                Some(array) => RuntimeError::MixedGeometry { array },
                None => RuntimeError::Capability {
                    kernel: kernel.name().to_string(),
                    backend: self.backends[0].kind().label().to_string(),
                },
            });
        }
        Ok(JobPricing {
            classes,
            config_words: config_words.unwrap_or(0),
            per_backend,
        })
    }

    /// The typed error for routing a job to backend `index`, which cannot
    /// serve it.
    fn unservable(&self, index: usize, kernel: &str) -> RuntimeError {
        if self.backends[index].kind() == BackendKind::Array {
            RuntimeError::MixedGeometry { array: index }
        } else {
            RuntimeError::Capability {
                kernel: kernel.to_string(),
                backend: self.backends[index].kind().label().to_string(),
            }
        }
    }

    /// Executes one [`PrefetchDirective`]: stages `kernel`'s program on
    /// backend `target` no earlier than `not_before` (cycle 0 for a batch
    /// fan-out, the dispatch cycle for the serving layer) and folds the
    /// streamed cycles into `wave`.
    ///
    /// Speculative staging is best-effort: a prefetch the target cannot
    /// satisfy (its configuration memory packed with pinned programs, say)
    /// — or directed at an offload backend, which has no configuration
    /// memory — is skipped, not fatal.  The job's own launch then pays the
    /// reload, and a genuine error resurfaces there, on the authoritative
    /// path.
    pub(crate) fn stage_prefetch<K: Kernel>(
        &mut self,
        target: usize,
        kernel: &K,
        not_before: u64,
        schedules: &mut [StreamSchedule],
        wave: &mut FleetReport,
    ) {
        // The backlog *before* the prefetch decides whether the reload is
        // fully hidden (the ConfigLoad lane leaves the compute lane
        // untouched either way).
        let backlog = schedules[target].free_at(Engine::Compute);
        let Some(session) = self.backends[target].as_session_mut() else {
            return;
        };
        if let Ok(Some(staged)) = session.prefetch(kernel) {
            let span = schedules[target].prefetch_at(staged.config_cycles, not_before);
            let report = &mut wave.arrays[target].report;
            report.prefetched += 1;
            if span.end <= backlog {
                report.hidden_reloads += 1;
            }
            // The streamed words are real engine work: fold them into the
            // serial phase sum and the activity counters so work
            // conservation and energy accounting hold.  The joules go to
            // the backend (and to the prefetch sub-total) but to no job:
            // per-job routes account execution only.
            report.cycles += staged.config_cycles;
            report.evictions += staged.evictions;
            let staged_nj = EnergyModel::calibrated().price_array(&staged.counters);
            report.energy_nj += staged_nj;
            report.prefetch_energy_nj += staged_nj;
            report.counters += staged.counters;
        }
    }

    /// The job loop of [`Pool::run_stream`]: prices, plans, prefetches and
    /// runs every job, recording into `wave`/`schedules` as it goes so the
    /// caller can salvage the accounting of an aborted fan-out.
    fn fan_out<'k, K, J, W, F>(
        &mut self,
        jobs: J,
        mut sink: F,
        wave: &mut FleetReport,
        schedules: &mut [StreamSchedule],
    ) -> Result<()>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let backends = self.backends.len();
        let out_of_range = |index: usize| RuntimeError::Placement {
            index,
            arrays: backends,
        };
        for (index, (kernel, windows)) in jobs.into_iter().enumerate() {
            let key = kernel.cache_key();
            let pricing = self.price_job(kernel, &key)?;
            // Windows are consumed lazily (constant memory in the window
            // count, like `Session::run_stream`); placement sees the
            // iterator's size hint.
            let windows = windows.into_iter();
            let windows_hint = windows.size_hint().0;
            let hint = self.window_hint(&key);
            let energy_hint = self.window_energy_hint(&key);
            let views: Vec<BackendView> = self
                .backends
                .iter()
                .enumerate()
                .map(|(i, backend)| BackendView {
                    index: i,
                    kind: backend.kind(),
                    capabilities: backend.capabilities(),
                    resident: backend.is_resident(&key),
                    warm: backend.is_warm(&key),
                    free_compute_at: schedules[i].free_at(Engine::Compute),
                    free_config_at: schedules[i].free_at(Engine::ConfigLoad),
                    busy_compute: backend.busy_compute(),
                    loaded_programs: backend.loaded_programs(),
                    reload_cycles: pricing.per_backend[i].reload_cycles,
                    window_cycles: pricing.per_backend[i].window_cycles,
                    reload_energy_nj: pricing.per_backend[i].reload_energy_nj,
                    window_energy_nj: pricing.per_backend[i].window_energy_nj,
                })
                .collect();
            let job = JobView {
                index,
                cache_key: &key,
                windows: windows_hint,
                config_words: pricing.config_words,
                classes: pricing.classes,
                window_cycles_hint: hint,
                window_energy_hint_nj: energy_hint,
                deadline: None,
            };
            let plan = self.placement.place(&job, &views);
            let chosen = plan.backend;
            if chosen >= backends {
                return Err(out_of_range(chosen));
            }
            if views[chosen].reload_cycles.is_none() {
                return Err(self.unservable(chosen, kernel.name()));
            }
            if let Some(directive) = plan.prefetch {
                let target = directive.backend;
                if target >= backends {
                    return Err(out_of_range(target));
                }
                self.stage_prefetch(target, kernel, 0, schedules, wave);
            }
            wave.jobs += 1;
            wave.arrays[chosen].jobs += 1;
            let kind = self.backends[chosen].kind();
            wave.routes.push(JobRoute {
                job: index,
                backend: chosen,
                kind,
                energy_nj: 0,
            });
            for window in windows {
                let (output, phases, window_nj) = run_window_on(
                    self.backends[chosen].as_mut(),
                    kernel,
                    &key,
                    window.borrow(),
                    &mut wave.arrays[chosen].report,
                )?;
                // Attribute the window's measured joules to the job as
                // they land, so even an aborted fan-out's routes price the
                // work actually done.
                wave.routes
                    .last_mut()
                    .expect("route pushed above")
                    .energy_nj += window_nj;
                schedules[chosen].push(phases);
                if kind == BackendKind::Array {
                    // Learn the kernel's observed array cost, so later
                    // placements can weigh arrays against offload models.
                    let entry = self.estimates.entry(key.clone()).or_insert((0, 0));
                    entry.0 += phases.compute;
                    entry.1 += 1;
                }
                sink(index, output)?;
            }
        }
        Ok(())
    }

    /// Runs every job of the same shape on one fresh, unconstrained
    /// [`Session`], serially — the reference the pool's equivalence tests
    /// compare against.  Outputs are grouped by job in submission order;
    /// the returned [`RunReport`] aggregates the whole serial run.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the run.
    #[allow(clippy::type_complexity)]
    pub fn run_serial_reference<'k, K, J, W>(jobs: J) -> Result<(Vec<Vec<K::Output>>, RunReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let mut session = Session::new();
        let mut outputs = Vec::new();
        let mut total = RunReport::new("serial-reference");
        for (kernel, windows) in jobs {
            let mut job_outputs = Vec::new();
            for window in windows {
                let (output, report) = session.run(kernel, window.borrow())?;
                total.absorb(&report);
                job_outputs.push(output);
            }
            outputs.push(job_outputs);
        }
        Ok((outputs, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuBackend, FftBackend, FftShape, Offload};
    use crate::testing::{constrained_sessions, BakedScaleKernel};
    use vwr2a_core::geometry::Geometry;

    fn baked_words() -> usize {
        BakedScaleKernel::new(1)
            .program(&Geometry::paper())
            .unwrap()
            .config_words()
    }

    fn windows(count: usize, seed: i32) -> Vec<Vec<i32>> {
        (0..count)
            .map(|w| (0..96).map(|i| i + seed + 7 * w as i32).collect())
            .collect()
    }

    /// One job per pick, 2 windows each, kernels indexed by `picks`.
    fn picked_jobs<'a>(
        kernels: &'a [BakedScaleKernel],
        picks: &[usize],
    ) -> Vec<(&'a BakedScaleKernel, Vec<Vec<i32>>)> {
        picks
            .iter()
            .enumerate()
            .map(|(j, &pick)| (&kernels[pick], windows(2, j as i32)))
            .collect()
    }

    /// Outputs of a fan-out, grouped by job, then window.
    type JobOutputs = Vec<Vec<Vec<i32>>>;

    /// Fans `picks`-selected kernels over a 2-array pool with 2-slot
    /// configuration memories, returning (pool outputs, fleet report,
    /// serial reference outputs).
    fn run_mixed(
        factors: &[i16],
        picks: &[usize],
        placement: impl Placement + 'static,
    ) -> (JobOutputs, FleetReport, JobOutputs) {
        let kernels: Vec<BakedScaleKernel> =
            factors.iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * baked_words()))
            .unwrap()
            .with_placement(placement);
        let jobs = picked_jobs(&kernels, picks);
        let (outputs, fleet) = pool
            .run_batch(
                jobs.iter()
                    .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
            )
            .unwrap();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        (outputs, fleet, serial)
    }

    /// 12 jobs cycling over 3 distinct programs.
    const THREE_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
    /// 12 jobs over 4 distinct programs in an irregular order, so
    /// round-robin cannot accidentally split the working set cleanly
    /// across the two arrays.
    const FOUR_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 3, 2, 0, 1, 3, 0, 2, 3, 1];

    #[test]
    fn pool_outputs_match_serial_execution_for_every_strategy() {
        let factors = [2i16, 3, 5];
        let (ca, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, CostAware::default());
        assert_eq!(ca, serial);
        let (ra, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        assert_eq!(ra, serial);
        let (rr, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(rr, serial);
        let (ll, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, LeastLoaded);
        assert_eq!(ll, serial);
    }

    #[test]
    fn cost_aware_prefetch_turns_every_reload_warm() {
        // Same capacity-pressure scenario as the residency-aware test: 2
        // arrays, 3 distinct programs, 2-slot memories.  Cost-aware
        // placement stages every first-per-array reload speculatively, so
        // no launch ever pays configuration streaming on its critical
        // path.
        let factors = [2i16, 3, 5];
        let (_, cost_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, CostAware::default());
        assert_eq!(cost_aware.cold_reloads(), 0, "all reloads prefetched");
        assert!(cost_aware.prefetched() >= 3, "one stage per program-array");
        assert_eq!(
            cost_aware.warm_launches(),
            cost_aware.invocations(),
            "every launch found its program warm"
        );
        // The total reload bill is visible: prefetches replace cold
        // launches one for one, never silently disappear.
        let (_, residency_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        assert!(
            cost_aware.cold_reloads() + cost_aware.prefetched() >= residency_aware.cold_reloads()
        );
    }

    #[test]
    fn residency_aware_beats_round_robin_on_cold_reloads() {
        // The satellite scenario: 2 arrays, 3 distinct kernels, 2-slot
        // configuration memories.  Residency-aware placement pins each
        // program to "its" array and goes cold exactly once per program;
        // round-robin alternates every program across both 2-slot
        // memories — each array cycles through all 3 programs and keeps
        // re-streaming configuration words.
        let factors = [2i16, 3, 5];
        let (_, residency_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        let (_, round_robin, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(
            residency_aware.cold_reloads(),
            3,
            "each of the 3 programs loads cold exactly once"
        );
        assert_eq!(residency_aware.evictions(), 0);
        assert!(
            residency_aware.cold_reloads() < round_robin.cold_reloads(),
            "residency-aware {} cold reloads must beat round-robin {}",
            residency_aware.cold_reloads(),
            round_robin.cold_reloads()
        );
        assert!(round_robin.evictions() > 0, "3 programs thrash 2 slots");
    }

    /// A launch-only kernel with a NOP-padded program: a distinct program
    /// per `key`, sized so cold configuration streaming is expensive
    /// relative to the (DMA-free) execution — the shape on which placement
    /// quality shows up in the fleet wall clock.
    struct PaddedKernel {
        key: String,
    }

    impl PaddedKernel {
        const ROWS: usize = 24;

        fn new(key: &str) -> Self {
            Self {
                key: key.to_string(),
            }
        }

        fn words() -> usize {
            PaddedKernel::new("probe")
                .program(&Geometry::paper())
                .unwrap()
                .config_words()
        }
    }

    impl Kernel for PaddedKernel {
        type Input = ();
        type Output = u64;
        fn name(&self) -> &str {
            "padded"
        }
        fn cache_key(&self) -> String {
            self.key.clone()
        }
        fn resources(&self) -> crate::session::Resources {
            crate::session::Resources::default()
        }
        fn program(&self, g: &Geometry) -> Result<vwr2a_core::program::KernelProgram> {
            use vwr2a_core::program::{ColumnProgram, Row};
            let mut rows = vec![Row::new(g.rcs_per_column); Self::ROWS];
            rows.push(Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit));
            Ok(vwr2a_core::program::KernelProgram::new(
                self.key.as_str(),
                vec![ColumnProgram::new(rows)?],
            )?)
        }
        fn execute(&self, ctx: &mut crate::session::LaunchCtx<'_>, _input: &()) -> Result<u64> {
            ctx.launch()
        }
    }

    #[test]
    fn residency_aware_beats_round_robin_on_fleet_occupancy() {
        // The bench-bin acceptance claim: on a mixed-kernel sweep whose
        // working set fills the fleet (4 programs over 2 × 2 slots),
        // residency-aware placement spreads the programs across the
        // arrays once and then runs warm and balanced, while round-robin
        // keeps every array cycling through all 4 programs — the extra
        // configuration streaming sits on each array's critical path, so
        // a smaller fraction of the fleet's array-cycles goes to compute.
        let kernels: Vec<PaddedKernel> = (0..4)
            .map(|k| PaddedKernel::new(&format!("p{k}")))
            .collect();
        let run = |placement: Box<dyn Placement>| {
            let mut pool =
                Pool::with_sessions(constrained_sessions(2, 2 * PaddedKernel::words())).unwrap();
            pool.placement = placement;
            let (_, fleet) = pool
                .run_batch(
                    FOUR_KERNEL_PICKS
                        .iter()
                        .map(|&pick| (&kernels[pick], vec![(); 2])),
                )
                .unwrap();
            fleet
        };
        let residency_aware = run(Box::new(ResidencyAware));
        let round_robin = run(Box::new(RoundRobin));
        assert_eq!(residency_aware.cold_reloads(), 4);
        assert_eq!(residency_aware.evictions(), 0);
        assert!(round_robin.evictions() > 0);
        assert!(
            round_robin.cold_reloads() > residency_aware.cold_reloads(),
            "round-robin must thrash the 2-slot memories"
        );
        assert!(
            residency_aware.occupancy() > round_robin.occupancy(),
            "occupancy {:.3} must beat {:.3}",
            residency_aware.occupancy(),
            round_robin.occupancy()
        );
        assert!(residency_aware.wall_cycles() < round_robin.wall_cycles());

        // The tentpole claim on the same workload: prefetching the reloads
        // off the critical path beats even the residency-aware scheduler —
        // strictly fewer cold reloads (none) and a strictly lower fleet
        // wall clock, with some reloads fully hidden inside backlogs.
        let cost_aware = run(Box::<CostAware>::default());
        assert_eq!(cost_aware.cold_reloads(), 0);
        assert!(cost_aware.prefetched() >= 4);
        assert!(
            cost_aware.wall_cycles() < residency_aware.wall_cycles(),
            "cost-aware wall {} must beat residency-aware {}",
            cost_aware.wall_cycles(),
            residency_aware.wall_cycles()
        );
        assert_eq!(cost_aware.evictions(), 0);
    }

    #[test]
    fn fleet_wall_clock_and_busy_conserve_the_per_array_schedules() {
        // With prefetch (CostAware) the staged configuration cycles land on
        // the schedules' ConfigLoad lanes *and* in the per-array `cycles`,
        // so the same conservation identity must hold for both strategies.
        for fleet in [
            run_mixed(&[2i16, 3, 5], &THREE_KERNEL_PICKS, ResidencyAware).1,
            run_mixed(&[2i16, 3, 5], &THREE_KERNEL_PICKS, CostAware::default()).1,
        ] {
            let max_wall = fleet
                .arrays
                .iter()
                .map(|a| a.report.wall_cycles)
                .max()
                .unwrap();
            assert_eq!(fleet.wall_cycles(), max_wall);
            for array in &fleet.arrays {
                assert!(fleet.wall_cycles() >= array.report.wall_cycles);
                // Per-array work conservation, as in the schedule proptest:
                // every phase cycle — prefetched streaming included —
                // appears exactly once in the occupancy.
                assert_eq!(
                    array.report.busy.config_load
                        + array.report.busy.dma
                        + array.report.busy.compute,
                    array.report.cycles
                );
            }
            let busy_sum = fleet
                .arrays
                .iter()
                .map(|a| a.report.busy.total())
                .sum::<u64>();
            assert_eq!(fleet.busy().total(), busy_sum);
        }
    }

    #[test]
    fn placement_sees_residency_and_balances_new_programs() {
        let kernels: Vec<BakedScaleKernel> =
            [2, 3].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = (0..4)
            .map(|j| (&kernels[j % 2], windows(1, j as i32)))
            .collect();
        pool.run_batch(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        // The two distinct programs must have been spread over the two
        // arrays (the second program's reload is cheaper than queueing
        // behind the first job's backlog), and each repeat went back to
        // its warm array.
        assert!(pool.array(0).is_resident(&kernels[0]));
        assert!(pool.array(1).is_resident(&kernels[1]));
        assert!(!pool.array(0).is_resident(&kernels[1]));
        assert!(!pool.array(1).is_resident(&kernels[0]));
    }

    #[test]
    fn residency_persists_across_waves() {
        let kernel = BakedScaleKernel::new(9);
        let mut pool = Pool::new(2);
        let ws = windows(2, 0);
        let (_, first) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        // The default cost-aware placement stages the one reload ahead of
        // the launch: prefetched, never cold.
        assert_eq!(first.cold_reloads(), 0);
        assert_eq!(first.prefetched(), 1);
        let (_, second) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(second.prefetched(), 0, "wave 2 finds the program warm");
        assert_eq!(second.cold_reloads(), 0);
        // stats() accumulated both waves, with per-wave routes offset so
        // job indices keep counting.
        assert_eq!(pool.stats().jobs, 2);
        assert_eq!(pool.stats().cold_reloads(), 0);
        assert_eq!(pool.stats().prefetched(), 1);
        assert_eq!(pool.stats().invocations(), 4);
        assert_eq!(pool.stats().routes.len(), 2);
        assert_eq!(pool.stats().routes[1].job, 1);
    }

    #[test]
    fn run_stream_delivers_outputs_with_job_indices() {
        let kernels: Vec<BakedScaleKernel> =
            [4, 5].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let mut seen: Vec<(usize, i32)> = Vec::new();
        let window = [10i32, 20];
        let report = pool
            .run_stream(
                (0..3).map(|j| (&kernels[j % 2], [window.as_slice()])),
                |job, out| {
                    seen.push((job, out[0]));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(seen, vec![(0, 40), (1, 50), (2, 40)]);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.invocations(), 3);
        assert_eq!(report.routes.len(), 3, "one route record per job");
        assert!(report.routes.iter().all(|r| r.kind == BackendKind::Array));
    }

    #[test]
    fn sink_error_aborts_the_fan_out_but_the_pool_stays_usable() {
        let kernel = BakedScaleKernel::new(3);
        let mut pool = Pool::new(2);
        let ws = windows(3, 0);
        let err = pool
            .run_stream([(&kernel, ws.iter().map(Vec::as_slice))], |_, _| {
                Err(RuntimeError::sink("downstream is full"))
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        // The aborted wave's work is not lost from the fleet statistics:
        // the (prefetched) configuration stream physically ran.
        assert_eq!(pool.stats().jobs, 1);
        assert_eq!(pool.stats().cold_reloads(), 0);
        assert_eq!(pool.stats().prefetched(), 1);
        assert_eq!(pool.stats().invocations(), 1);
        assert!(pool.stats().busy().compute > 0);
        assert!(pool.stats().busy().config_load > 0);
        // The placed program stays resident; the next wave runs warm.
        let (_, report) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(report.cold_reloads(), 0);
        assert_eq!(report.prefetched(), 0);
    }

    #[test]
    fn rogue_placement_fails_cleanly() {
        #[derive(Debug)]
        struct OutOfRange;
        impl Placement for OutOfRange {
            fn name(&self) -> &'static str {
                "out-of-range"
            }
            fn place(&self, _job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
                PlacementPlan::run_on(backends.len() + 3)
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let mut pool = Pool::new(2).with_placement(OutOfRange);
        let ws = windows(1, 0);
        let err = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Placement {
                    index: 5,
                    arrays: 2
                }
            ),
            "expected Placement, got {err:?}"
        );
        // Nothing ran, and the pool recovers with a sane strategy.
        pool.set_placement(ResidencyAware);
        assert_eq!(pool.placement_name(), "residency-aware");
        pool.run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn rogue_prefetch_directive_fails_cleanly() {
        // A directive naming a non-existent backend must abort like a
        // rogue target — before any prefetch or window runs.
        #[derive(Debug)]
        struct RoguePrefetch;
        impl Placement for RoguePrefetch {
            fn name(&self) -> &'static str {
                "rogue-prefetch"
            }
            fn place(&self, _job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
                PlacementPlan {
                    backend: 0,
                    prefetch: Some(PrefetchDirective {
                        backend: backends.len(),
                    }),
                }
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let mut pool = Pool::new(2).with_placement(RoguePrefetch);
        let ws = windows(1, 0);
        let err = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Placement {
                    index: 2,
                    arrays: 2
                }
            ),
            "expected Placement, got {err:?}"
        );
        assert_eq!(pool.stats().jobs, 0);
        assert_eq!(pool.stats().prefetched(), 0);
        // The pool recovers with the default strategy.
        pool.set_placement(CostAware::default());
        pool.run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn prefetch_directives_may_warm_a_different_array() {
        // A strategy can replicate a program onto another array ahead of
        // anticipated load: the job runs on backend 0, the directive warms
        // backend 1, and the next wave launches warm on either.
        #[derive(Debug)]
        struct WarmTheOther;
        impl Placement for WarmTheOther {
            fn name(&self) -> &'static str {
                "warm-the-other"
            }
            fn place(&self, _job: &JobView<'_>, _backends: &[BackendView]) -> PlacementPlan {
                PlacementPlan {
                    backend: 0,
                    prefetch: Some(PrefetchDirective { backend: 1 }),
                }
            }
        }
        let kernel = BakedScaleKernel::new(7);
        let mut pool = Pool::new(2).with_placement(WarmTheOther);
        let ws = windows(1, 0);
        let (_, fleet) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        // Array 1 was warmed speculatively; array 0 ran the job cold (its
        // own reload was not staged).
        assert_eq!(fleet.prefetched(), 1);
        assert_eq!(fleet.cold_reloads(), 1);
        assert!(pool.array(0).is_warm(&kernel));
        assert!(pool.array(1).is_warm(&kernel));
        assert_eq!(pool.array(1).prefetches(), 1);
    }

    #[test]
    fn unsatisfiable_prefetches_are_skipped_not_fatal() {
        // A program larger than the whole configuration memory: the
        // directed prefetch cannot be satisfied and is skipped; the
        // genuine error then surfaces from the job's own launch path, and
        // no phantom prefetch is recorded.
        let kernels: Vec<BakedScaleKernel> = [2i16, 3]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, baked_words() - 1)).unwrap();
        let ws = windows(1, 0);
        let err = pool
            .run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Core(vwr2a_core::CoreError::ConfigMemoryFull { .. })
            ),
            "expected ConfigMemoryFull from the launch path, got {err:?}"
        );
        assert_eq!(
            pool.stats().prefetched(),
            0,
            "the failed stage is not counted"
        );
        // The pool stays reusable for jobs that do fit.
        let mut roomy = Pool::new(1);
        roomy
            .run_batch([(&kernels[0], ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn compute_backlogs_hide_prefetched_reloads_completely() {
        // One array, two compute-heavy jobs with distinct programs: the
        // second job's reload streams on the ConfigLoad lane entirely
        // inside the first job's compute backlog — a reload at zero
        // wall-clock cost, which a cold launch could never be.
        let first = BakedScaleKernel::new(2);
        let second = BakedScaleKernel::new(3);
        let ws = windows(6, 0);
        let mut pool = Pool::new(1);
        let (_, fleet) = pool
            .run_batch([
                (&first, ws.iter().map(Vec::as_slice)),
                (&second, ws.iter().map(Vec::as_slice)),
            ])
            .unwrap();
        assert_eq!(fleet.cold_reloads(), 0);
        assert_eq!(fleet.prefetched(), 2);
        assert_eq!(
            fleet.hidden_reloads(),
            1,
            "the first reload has no backlog to hide in; the second does"
        );
    }

    #[test]
    fn stats_accumulate_consistently_across_waves_and_errors() {
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * baked_words())).unwrap();
        let ws = windows(2, 0);

        // Wave 1: two jobs over two programs.
        pool.run_batch(
            kernels[..2]
                .iter()
                .map(|k| (k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        let after_one = pool.stats().clone();
        assert_eq!(after_one.jobs, 2);
        assert_eq!(after_one.invocations(), 4);

        // Wave 2: all three programs; counters strictly accumulate.
        pool.run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap();
        let after_two = pool.stats().clone();
        assert_eq!(after_two.jobs, 5);
        assert_eq!(after_two.invocations(), 10);
        assert!(after_two.prefetched() >= after_one.prefetched());
        assert!(after_two.busy().total() > after_one.busy().total());

        // Wave 3 aborts in the sink after one window: the partial work is
        // still folded in (the first job's window ran).
        let err = pool
            .run_stream(
                kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))),
                |_, _| Err(RuntimeError::sink("full")),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        let after_abort = pool.stats().clone();
        assert_eq!(after_abort.jobs, 6, "the aborted job still counts");
        assert_eq!(after_abort.invocations(), 11);

        // Wave 4 aborts in placement before anything runs: no counters
        // move at all.
        #[derive(Debug)]
        struct Rogue;
        impl Placement for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn place(&self, _job: &JobView<'_>, backends: &[BackendView]) -> PlacementPlan {
                PlacementPlan::run_on(backends.len())
            }
        }
        pool.set_placement(Rogue);
        assert!(pool
            .run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .is_err());
        assert_eq!(pool.stats(), &after_abort, "a rogue wave adds nothing");

        // The pool stays fully usable, and the invariants hold over the
        // whole accumulated history: per-array jobs sum to the total, and
        // every array's busy split matches its serial phase sum.
        pool.set_placement(CostAware::default());
        pool.run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.jobs, 9);
        assert_eq!(stats.invocations(), 17);
        assert_eq!(stats.arrays.iter().map(|a| a.jobs).sum::<u64>(), stats.jobs);
        for array in &stats.arrays {
            assert_eq!(
                array.report.busy.config_load + array.report.busy.dma + array.report.busy.compute,
                array.report.cycles
            );
        }
        assert_eq!(
            stats.busy().total(),
            stats.arrays.iter().map(|a| a.report.busy.total()).sum()
        );
    }

    #[test]
    fn empty_fan_out_is_free() {
        let mut pool = Pool::new(3);
        let (outputs, report) = pool
            .run_batch(std::iter::empty::<(&BakedScaleKernel, Vec<&[i32]>)>())
            .unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.jobs, 0);
        assert_eq!(report.wall_cycles(), 0);
        assert_eq!(report.occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn zero_backend_pools_are_rejected() {
        let _ = Pool::new(0);
    }

    /// Pins every job to one backend — the deterministic routing probe of
    /// the heterogeneous tests.
    #[derive(Debug)]
    struct Pin(usize);
    impl Placement for Pin {
        fn name(&self) -> &'static str {
            "pin"
        }
        fn place(&self, _job: &JobView<'_>, _backends: &[BackendView]) -> PlacementPlan {
            PlacementPlan::run_on(self.0)
        }
    }

    #[test]
    fn mixed_geometry_fleets_price_reloads_per_geometry() {
        // PR 7 retires the blanket MixedGeometry rejection: sessions with
        // different configuration-memory capacities form a legal fleet,
        // each backend pricing reloads against its own geometry, and
        // outputs stay bit-identical to the serial reference.
        let mut sessions = constrained_sessions(1, 3 * baked_words());
        sessions.extend(constrained_sessions(1, baked_words()));
        let mut pool = Pool::with_sessions(sessions).unwrap();
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let jobs = picked_jobs(&kernels, &THREE_KERNEL_PICKS);
        let (outputs, fleet) = pool
            .run_batch(
                jobs.iter()
                    .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
            )
            .unwrap();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        assert_eq!(outputs, serial);
        assert_eq!(fleet.jobs, 12);
        assert!(fleet.routes.iter().all(|r| r.kind == BackendKind::Array));
    }

    /// A scale kernel that refuses to map onto configuration memories
    /// smaller than two of its programs — the "genuinely incompatible
    /// kernel" of the mixed-geometry regression test.
    #[derive(Debug)]
    struct PickyKernel(BakedScaleKernel);
    impl Kernel for PickyKernel {
        type Input = [i32];
        type Output = Vec<i32>;
        fn name(&self) -> &str {
            "picky"
        }
        fn cache_key(&self) -> String {
            "picky".to_string()
        }
        fn resources(&self) -> crate::session::Resources {
            self.0.resources()
        }
        fn config_words(&self, g: &Geometry) -> Result<usize> {
            if g.config_words < 2 * baked_words() {
                return Err(RuntimeError::invalid_input(
                    "picky does not map onto small configuration memories",
                ));
            }
            self.0.config_words(g)
        }
        fn program(&self, g: &Geometry) -> Result<vwr2a_core::program::KernelProgram> {
            self.0.program(g)
        }
        fn execute(
            &self,
            ctx: &mut crate::session::LaunchCtx<'_>,
            input: &[i32],
        ) -> Result<Vec<i32>> {
            self.0.execute(ctx, input)
        }
    }

    #[test]
    fn incompatible_kernels_still_fail_as_mixed_geometry() {
        // The regression guard for the old rejection case: a kernel whose
        // program cannot be built for some backend's geometry is
        // ineligible there — routed around under cost-aware placement,
        // and a typed MixedGeometry error when pinned there or when no
        // backend can take it at all.
        let picky = PickyKernel(BakedScaleKernel::new(4));
        let ws = windows(1, 0);
        let mut sessions = constrained_sessions(1, 2 * baked_words());
        sessions.extend(constrained_sessions(1, baked_words()));
        let mut pool = Pool::with_sessions(sessions).unwrap();
        let (outputs, fleet) = pool
            .run_batch([(&picky, ws.iter().map(Vec::as_slice))])
            .unwrap();
        let (serial, _) =
            Pool::run_serial_reference([(&picky, ws.iter().map(Vec::as_slice))]).unwrap();
        assert_eq!(outputs, serial);
        assert_eq!(fleet.routes[0].backend, 0, "routed around the small array");

        pool.set_placement(Pin(1));
        let err = pool
            .run_batch([(&picky, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert_eq!(err, RuntimeError::MixedGeometry { array: 1 });
        assert!(err.to_string().contains("backend 1"));

        // A fleet with no compatible geometry fails at admission, naming
        // the first failing array; the pool stays reusable.
        let mut tiny = Pool::with_sessions(constrained_sessions(1, baked_words())).unwrap();
        let err = tiny
            .run_batch([(&picky, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert_eq!(err, RuntimeError::MixedGeometry { array: 0 });
        assert_eq!(tiny.stats().jobs, 0);
        tiny.run_batch([(&picky.0, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    /// A kernel servable by both the arrays and the FFT engine: the CGRA
    /// path is a baked scale program; the FFT path computes the same
    /// scaled output host-side while running the engine's real-FFT flow
    /// for genuine cycle accounting — outputs are bit-identical across
    /// backends by construction, like the real FFT kernels in
    /// `vwr2a-kernels` (whose numerical equivalence is pinned there).
    #[derive(Debug)]
    struct FftishKernel(BakedScaleKernel);
    impl FftishKernel {
        const POINTS: usize = 256;
    }
    impl Kernel for FftishKernel {
        type Input = [i32];
        type Output = Vec<i32>;
        fn name(&self) -> &str {
            "fftish"
        }
        fn cache_key(&self) -> String {
            format!("fftish:{}", self.0.factor())
        }
        fn resources(&self) -> crate::session::Resources {
            self.0.resources()
        }
        fn program(&self, g: &Geometry) -> Result<vwr2a_core::program::KernelProgram> {
            self.0.program(g)
        }
        fn execute(
            &self,
            ctx: &mut crate::session::LaunchCtx<'_>,
            input: &[i32],
        ) -> Result<Vec<i32>> {
            self.0.execute(ctx, input)
        }
        fn offload(&self) -> Offload {
            Offload {
                fft: Some(FftShape {
                    points: Self::POINTS,
                    real: true,
                }),
                cpu_cycles: None,
            }
        }
        fn execute_fft(
            &self,
            accel: &vwr2a_fftaccel::FftAccelerator,
            input: &[i32],
        ) -> Result<(Vec<i32>, vwr2a_fftaccel::FftAccelStats)> {
            let samples: Vec<f64> = (0..Self::POINTS)
                .map(|i| f64::from(input.get(i).copied().unwrap_or(0)))
                .collect();
            let (_, stats) = accel
                .run_real(&samples)
                .map_err(|e| RuntimeError::invalid_input(e.to_string()))?;
            let out = input
                .iter()
                .map(|&v| v.wrapping_mul(i32::from(self.0.factor())))
                .collect();
            Ok((out, stats))
        }
    }

    #[test]
    fn objectives_rank_the_same_candidates_differently() {
        use crate::backend::{CAP_CGRA, CAP_FFT};
        // One warm array and the FFT engine, deliberately priced so the
        // array finishes a touch sooner while the engine costs ~5x fewer
        // joules — the canonical trade the objectives disagree on.
        let job = JobView {
            index: 0,
            cache_key: "k",
            windows: 2,
            config_words: 100,
            classes: CAP_CGRA | CAP_FFT,
            window_cycles_hint: 1_000,
            window_energy_hint_nj: 67_000,
            deadline: None,
        };
        let array = BackendView {
            index: 0,
            kind: BackendKind::Array,
            capabilities: CAP_CGRA,
            resident: true,
            warm: true,
            free_compute_at: 0,
            free_config_at: 0,
            busy_compute: 0,
            loaded_programs: 1,
            reload_cycles: Some(100),
            window_cycles: None,
            reload_energy_nj: Some(500),
            window_energy_nj: None,
        };
        let engine = BackendView {
            index: 1,
            kind: BackendKind::FftAccel,
            capabilities: CAP_FFT,
            resident: false,
            warm: true,
            free_compute_at: 0,
            free_config_at: 0,
            busy_compute: 0,
            loaded_programs: 0,
            reload_cycles: Some(0),
            window_cycles: Some(1_100),
            reload_energy_nj: Some(0),
            window_energy_nj: Some(13_000),
        };
        let views = [array, engine];
        let place =
            |obj: Objective, job: &JobView| CostAware::with_objective(obj).place(job, &views);
        // Cycles: the warm array completes first (2 000 vs 2 200).
        assert_eq!(place(Objective::Cycles, &job).backend, 0);
        // Energy: 2 x 13 000 nJ on the engine vs 2 x 67 000 nJ warm on
        // the array.
        assert_eq!(place(Objective::Energy, &job).backend, 1);
        // EDP: 26 000 x 2 200 beats 134 000 x 2 000 comfortably.
        assert_eq!(place(Objective::EnergyDelayProduct, &job).backend, 1);
        // No deadline: EnergyUnderDeadline falls back to EDP.
        assert_eq!(place(Objective::EnergyUnderDeadline, &job).backend, 1);
        // A deadline both meet: take the cheaper joules.
        let loose = JobView {
            deadline: Some(2_500),
            ..job
        };
        assert_eq!(place(Objective::EnergyUnderDeadline, &loose).backend, 1);
        // A deadline only the array meets: joules yield to feasibility.
        let tight = JobView {
            deadline: Some(2_100),
            ..job
        };
        assert_eq!(place(Objective::EnergyUnderDeadline, &tight).backend, 0);
        // A deadline nobody meets: earliest completion limits the damage.
        let hopeless = JobView {
            deadline: Some(10),
            ..job
        };
        assert_eq!(place(Objective::EnergyUnderDeadline, &hopeless).backend, 0);
        // Objectives surface in the strategy name for reports and benches.
        assert_eq!(CostAware::default().name(), "cost-aware");
        assert_eq!(
            CostAware::with_objective(Objective::EnergyDelayProduct).name(),
            "cost-aware/edp"
        );
        assert_eq!(
            CostAware::with_objective(Objective::EnergyDelayProduct).objective(),
            Objective::EnergyDelayProduct
        );
    }

    #[test]
    fn energy_objective_still_prefetches_cold_array_choices() {
        use crate::backend::CAP_CGRA;
        // A cold array chosen by an energy objective must still get the
        // reload staged off the critical path, exactly like Cycles does.
        let job = JobView {
            index: 0,
            cache_key: "k",
            windows: 4,
            config_words: 60,
            classes: CAP_CGRA,
            window_cycles_hint: 500,
            window_energy_hint_nj: 30_000,
            deadline: None,
        };
        let cold = BackendView {
            index: 0,
            kind: BackendKind::Array,
            capabilities: CAP_CGRA,
            resident: false,
            warm: false,
            free_compute_at: 0,
            free_config_at: 0,
            busy_compute: 0,
            loaded_programs: 0,
            reload_cycles: Some(60),
            window_cycles: None,
            reload_energy_nj: Some(300),
            window_energy_nj: None,
        };
        for objective in [
            Objective::Cycles,
            Objective::Energy,
            Objective::EnergyDelayProduct,
            Objective::EnergyUnderDeadline,
        ] {
            let plan = CostAware::with_objective(objective).place(&job, &[cold]);
            assert_eq!(plan.backend, 0);
            assert!(
                plan.prefetch.is_some(),
                "{objective:?} must stage the cold reload"
            );
        }
    }

    #[test]
    fn fft_routed_jobs_execute_on_the_engine_and_stay_bit_identical() {
        let kernel = FftishKernel(BakedScaleKernel::new(3));
        let ws = windows(2, 0);
        let mut pool = Pool::with_sessions(constrained_sessions(1, 2 * baked_words()))
            .unwrap()
            .with_backend(FftBackend::new())
            .with_placement(Pin(1));
        let (outputs, fleet) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        let (serial, _) =
            Pool::run_serial_reference([(&kernel, ws.iter().map(Vec::as_slice))]).unwrap();
        assert_eq!(outputs, serial, "FFT-routed outputs match the CGRA serial");
        assert_eq!(fleet.routes.len(), 1);
        assert_eq!(fleet.routes[0].job, 0);
        assert_eq!(fleet.routes[0].backend, 1);
        assert_eq!(fleet.routes[0].kind, BackendKind::FftAccel);
        assert!(
            fleet.routes[0].energy_nj > 0,
            "the engine's measured joules land on the job's route"
        );
        let kinds = fleet.per_kind();
        let fft_row = kinds
            .iter()
            .find(|k| k.kind == BackendKind::FftAccel)
            .unwrap();
        assert_eq!(fft_row.jobs, 1);
        assert_eq!(fft_row.invocations, 2);
        // First window programs the engine (cold); the second finds the
        // same shape programmed (warm).  The engine's projection is exact.
        assert_eq!(fleet.cold_reloads(), 1);
        assert_eq!(fleet.warm_launches(), 1);
        let projected = FftBackend::new().window_cycles(&kernel.offload()).unwrap();
        assert_eq!(fft_row.cycles, 2 * projected);
        assert!(pool.backend(1).is_warm(&kernel.cache_key()));

        // A kernel without an FFT offload pinned to the engine is a typed
        // capability error, and the pool stays reusable.
        let plain = BakedScaleKernel::new(2);
        let err = pool
            .run_batch([(&plain, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert_eq!(
            err,
            RuntimeError::Capability {
                kernel: "baked-scale".to_string(),
                backend: "fft".to_string(),
            }
        );
        // Cost-aware placement routes the CGRA-only job around the engine.
        pool.set_placement(CostAware::default());
        let (_, fleet) = pool
            .run_batch([(&plain, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(fleet.routes[0].backend, 0);
        assert_eq!(fleet.routes[0].kind, BackendKind::Array);
    }

    #[test]
    fn cost_aware_offloads_tiny_jobs_to_the_cpu_and_keeps_bulk_on_arrays() {
        let words = baked_words() as u64;
        // Estimate of 2 host cycles per window: far below the array's
        // cold-reload streaming, so a one-window job belongs on the CPU.
        let kernel = BakedScaleKernel::new(5).with_cpu_offload(2);
        let tiny: Vec<Vec<i32>> = vec![vec![3, -4, 7]];
        let mut pool = Pool::with_sessions(constrained_sessions(1, 2 * baked_words()))
            .unwrap()
            .with_backend(CpuBackend::new());
        let (outputs, fleet) = pool
            .run_batch([(&kernel, tiny.iter().map(Vec::as_slice))])
            .unwrap();
        let (serial, _) =
            Pool::run_serial_reference([(&kernel, tiny.iter().map(Vec::as_slice))]).unwrap();
        assert_eq!(outputs, serial, "CPU-routed outputs match the CGRA serial");
        assert_eq!(fleet.routes[0].kind, BackendKind::Cpu);
        let kinds = fleet.per_kind();
        let cpu_row = kinds.iter().find(|k| k.kind == BackendKind::Cpu).unwrap();
        assert_eq!(cpu_row.jobs, 1);
        assert!(cpu_row.cycles > 0, "the ISS charged real cycles");
        assert_eq!(fleet.cold_reloads(), 0, "the CPU never reloads");

        // Enough windows that the modelled CPU total strictly exceeds the
        // one-off array reload: the bulk job stays on the array (and its
        // reload is prefetched), whatever the program's footprint.
        let bulk: Vec<Vec<i32>> = (0..2 * words).map(|w| vec![w as i32, 1, 2]).collect();
        let (outputs, fleet) = pool
            .run_batch([(&kernel, bulk.iter().map(Vec::as_slice))])
            .unwrap();
        let (serial, _) =
            Pool::run_serial_reference([(&kernel, bulk.iter().map(Vec::as_slice))]).unwrap();
        assert_eq!(outputs, serial);
        assert_eq!(fleet.routes[0].kind, BackendKind::Array);
        assert_eq!(fleet.cold_reloads(), 0);
        assert_eq!(fleet.prefetched(), 1);
    }

    #[test]
    fn baseline_strategies_skip_ineligible_backends() {
        // Round-robin over [array, array, fft] with CGRA-only jobs must
        // rotate over the two arrays only — the engine cannot take them.
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5, 7]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let ws = windows(1, 0);
        for placement in [
            Box::new(RoundRobin) as Box<dyn Placement>,
            Box::new(LeastLoaded),
            Box::new(ResidencyAware),
        ] {
            let mut pool = Pool::with_sessions(constrained_sessions(2, 4 * baked_words()))
                .unwrap()
                .with_backend(FftBackend::new());
            pool.placement = placement;
            let (_, fleet) = pool
                .run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
                .unwrap();
            assert_eq!(fleet.jobs, 4);
            assert!(
                fleet.routes.iter().all(|r| r.backend < 2),
                "{}: CGRA-only jobs must never land on the engine",
                pool.placement_name()
            );
        }
    }
}
