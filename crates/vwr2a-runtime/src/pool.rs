//! Multi-accelerator pool: fan `(kernel, windows)` jobs across a fleet of
//! [`Session`]s behind one residency-aware scheduler.
//!
//! # The scheduling model
//!
//! A [`Pool`] owns N independent arrays — each a full [`Session`] with its
//! own `Vwr2a`, configuration memory and eviction policy.  A *job* is one
//! `(kernel, windows)` workload: a kernel plus the window stream to run
//! through it.  [`Pool::run_batch`] / [`Pool::run_stream`] place each job
//! on one array via the pool's [`Placement`] strategy and execute its
//! windows there on the array's own pipelined
//! [`StreamSchedule`] (staging overlapped
//! with compute, exactly like [`Session::run_stream`]).
//!
//! Placement is where the fleet either wins or loses: a kernel's program
//! must be *resident* in an array's configuration memory to launch warm,
//! so routing a job to an array that already holds its program skips the
//! configuration-word streaming entirely, while a residency-blind router
//! keeps paying cold reloads (and, under capacity pressure, keeps evicting
//! other jobs' programs).  A strategy returns a [`PlacementPlan`]: the
//! target array, plus an optional [`PrefetchDirective`] that makes the
//! pool stage the job's configuration words *speculatively*
//! ([`Session::prefetch`]) on the target's
//! [`StreamSchedule`] before the job's first
//! window — the reload streams on the otherwise-idle configuration-load
//! lane, overlapping the array's compute backlog, and the launch itself
//! finds the program warm.  Four strategies ship with the pool:
//!
//! * [`CostAware`] — the default: weighs each candidate's reload cost (the
//!   program's configuration words, [`JobView::config_words`]) against its
//!   compute backlog ([`ArrayView::free_compute_at`]) and routes the job to
//!   the array whose first window could compute earliest, directing a
//!   prefetch whenever the chosen array would otherwise reload cold.  This
//!   subsumes [`ResidencyAware`]'s idle-array replication heuristic with
//!   an explicit cost model: replication happens exactly when the reload
//!   is cheaper than the backlog it avoids.
//! * [`ResidencyAware`] — PR 4's scheduler, kept as the prefetch-less
//!   comparison point: prefer arrays with the job's program resident,
//!   tie-breaking on the earliest-free compute engine; replicate onto
//!   fully idle arrays rather than queue behind busy resident copies.
//! * [`RoundRobin`] — job *i* goes to array *i mod N*, residency-blind.
//!   The baseline the `pool` bench bin compares against.
//! * [`LeastLoaded`] — route to the array with the fewest cumulative
//!   compute-busy cycles ([`Session::free_compute_at`]), balancing load
//!   without looking at residency.
//!
//! Outputs are **bit-identical** to running every job serially on one
//! session, for every strategy, with or without prefetch — placement only
//! moves *where* (and overlap and prefetch only *when*) the
//! already-verified work executes.  The merged [`FleetReport`] exposes
//! what placement changed: per-array busy and wall cycles, the fleet wall
//! clock (max over arrays), compute occupancy, the cold-reload count, and
//! how many reloads were prefetched ([`FleetReport::prefetched`]) or fully
//! hidden inside compute backlogs ([`FleetReport::hidden_reloads`]).
//!
//! # Example
//!
//! ```
//! use vwr2a_runtime::pool::Pool;
//! use vwr2a_runtime::testing::BakedScaleKernel;
//!
//! # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
//! let mut pool = Pool::new(2); // two arrays, cost-aware placement
//! let double = BakedScaleKernel::new(2);
//! let triple = BakedScaleKernel::new(3);
//! let windows: Vec<Vec<i32>> = (0..4).map(|w| vec![w; 32]).collect();
//!
//! let jobs = [&double, &triple, &double, &triple]
//!     .map(|kernel| (kernel, windows.iter().map(Vec::as_slice)));
//! let (outputs, fleet) = pool.run_batch(jobs)?;
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(outputs[0][0], vec![0; 32]);
//! // Each program's one reload was *prefetched* onto the array the job
//! // was routed to, off the launch's critical path: no launch ever went
//! // cold, and the repeat jobs found their programs resident and warm.
//! assert_eq!(fleet.cold_reloads(), 0);
//! assert_eq!(fleet.prefetched(), 2);
//! assert_eq!(fleet.warm_launches(), 16);
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::collections::HashMap;
use std::fmt;

use vwr2a_core::timeline::Engine;

use crate::error::{Result, RuntimeError};
use crate::pipeline::StreamSchedule;
use crate::report::{FleetReport, RunReport};
use crate::session::{Kernel, Session};

/// What a [`Placement`] strategy sees about the job being placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobView<'a> {
    /// Submission index of the job (0-based, in fan-out order).
    pub index: usize,
    /// The job kernel's [`Kernel::cache_key`] — program identity, i.e.
    /// what residency is tracked by.
    pub cache_key: &'a str,
    /// Lower-bound size hint of the job's window stream (exact for slices,
    /// `Vec`s and other exact-size iterators; `0` for opaque streams).
    /// The pool iterates windows lazily, so the true count is only known
    /// once the job has run.
    pub windows: usize,
    /// Configuration-word footprint of the job's program
    /// ([`Kernel::config_words`], cached per cache key by the pool): the
    /// cycles a reload streams, and therefore the cost a strategy weighs
    /// against a resident array's compute backlog.
    pub config_words: usize,
}

/// What a [`Placement`] strategy sees about one array of the pool at the
/// moment a job is placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayView {
    /// Index of the array in the pool.
    pub index: usize,
    /// `true` if the job's program is resident in this array's
    /// configuration memory ([`Session::is_resident_key`]).
    pub resident: bool,
    /// `true` if the program is resident *and* has launched on this array
    /// before (its next launch is warm).
    pub warm: bool,
    /// First cycle at which this array's compute engine is free on its
    /// current wave schedule
    /// ([`StreamSchedule::free_at`](crate::pipeline::StreamSchedule::free_at)
    /// on [`Engine::Compute`]).
    pub free_compute_at: u64,
    /// First cycle at which this array's configuration-load lane is free
    /// on its current wave schedule ([`Engine::ConfigLoad`]): a prefetch
    /// directed here streams no earlier than this, queueing behind the
    /// wave's previous reloads — cost models that ignore it over-replicate
    /// onto arrays whose configuration streamer is already the bottleneck.
    pub free_config_at: u64,
    /// The array's cumulative compute-busy cycles over the session's whole
    /// lifetime ([`Session::free_compute_at`]) — the cross-wave load
    /// metric.
    pub busy_compute: u64,
    /// Distinct programs resident in the array's configuration memory.
    pub loaded_programs: usize,
}

/// Directs the pool to stage a job's program speculatively before the
/// job's first window runs (see [`PlacementPlan`]).
///
/// The pool executes the directive by calling [`Session::prefetch`] on the
/// named array and replaying the streamed cycles on that array's
/// [`StreamSchedule::prefetch`] lane — where
/// they overlap the array's compute backlog instead of sitting on the
/// launch's critical path.  Staging an already-warm program is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchDirective {
    /// Array whose session stages the program (normally the plan's target
    /// array; a strategy may warm a different array, e.g. to replicate a
    /// hot program ahead of anticipated load).
    pub array: usize,
}

/// What a [`Placement`] strategy decides for one job: where it runs, and
/// whether its configuration reload is staged speculatively first.
///
/// Returned by [`Placement::place`].  Both the target array and a
/// directive's array must be valid indices; an out-of-range index aborts
/// the fan-out with [`RuntimeError::Placement`] (the pool stays valid and
/// reusable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Array that runs the job's windows.
    pub array: usize,
    /// Optional speculative configuration staging executed before the
    /// job's first window.
    pub prefetch: Option<PrefetchDirective>,
}

impl PlacementPlan {
    /// A plan that just runs the job on `array`, reload (if any) on the
    /// launch's critical path — the pre-prefetch behaviour.
    pub fn run_on(array: usize) -> Self {
        Self {
            array,
            prefetch: None,
        }
    }

    /// A plan that stages the job's program on `array` ahead of running
    /// the job there, so a would-be cold reload streams off the critical
    /// path and the launch finds the program warm.
    pub fn with_prefetch(array: usize) -> Self {
        Self {
            array,
            prefetch: Some(PrefetchDirective { array }),
        }
    }
}

/// Chooses which array of a [`Pool`] runs a job — and whether the job's
/// configuration reload is prefetched ahead of its launch.
///
/// The strategy is consulted once per job, in submission order, with a
/// fresh snapshot of every array — so residency and timeline effects of
/// earlier placements (including prefetches) are visible.  It returns a
/// [`PlacementPlan`]; any out-of-range array index in the plan aborts the
/// fan-out with [`RuntimeError::Placement`] (the pool stays valid and
/// reusable).  Strategies must be deterministic so fleet experiments are
/// reproducible.
pub trait Placement: fmt::Debug + Send {
    /// Short strategy name used in reports and bench tables.
    fn name(&self) -> &'static str;

    /// Returns the plan for `job`: target array plus optional prefetch.
    ///
    /// `arrays` is never empty (a pool has at least one array).
    fn place(&self, job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan;
}

/// Residency-aware placement: prefer arrays that already hold the job's
/// program, tie-break on the earliest-free compute engine.
///
/// A job whose program is resident *somewhere* goes to the resident array
/// whose compute engine frees earliest (warm launch, no configuration
/// streaming).  A program nobody holds yet goes to the earliest-free array
/// overall — which both balances load and spreads distinct programs across
/// the fleet, so the steady state keeps every program resident on "its"
/// array instead of thrashing one configuration memory.  One refinement
/// keeps affinity from starving the fleet: when every resident array is
/// busy but some array is still completely *idle* this wave, the job is
/// placed there instead — the cold reload replicates the program onto the
/// idle array, and from then on both copies serve warm launches (without
/// this, a two-program workload would leave half of a four-array fleet
/// permanently idle).  Ties resolve to the lowest array index, keeping
/// placement deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResidencyAware;

impl Placement for ResidencyAware {
    fn name(&self) -> &'static str {
        "residency-aware"
    }

    fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
        // Ties on the wave-local free time (e.g. every array idle at the
        // start of a wave) break on the lifetime compute load, so a
        // sequence of single-job waves still spreads first-seen programs
        // across the fleet instead of piling them onto array 0.
        let earliest_free = |candidates: &mut dyn Iterator<Item = &ArrayView>| {
            candidates
                .min_by_key(|a| (a.free_compute_at, a.busy_compute, a.index))
                .copied()
        };
        let best_any = earliest_free(&mut arrays.iter()).expect("a pool has at least one array");
        PlacementPlan::run_on(
            match earliest_free(&mut arrays.iter().filter(|a| a.resident)) {
                // Busy resident copies, but an idle array is available:
                // replicate rather than queue.
                Some(resident) if resident.free_compute_at > 0 && best_any.free_compute_at == 0 => {
                    best_any.index
                }
                Some(resident) => resident.index,
                None => best_any.index,
            },
        )
    }
}

/// Cost-based placement with speculative prefetch — the pool's default.
///
/// For every candidate array the strategy estimates when the job's first
/// window could start computing: the array's compute backlog
/// ([`ArrayView::free_compute_at`]), or the reload's streaming time
/// ([`JobView::config_words`], one word per cycle) when the program is not
/// warm there — whichever ends later, because a prefetched reload streams
/// *concurrently* with the backlog on the configuration-load lane.  The
/// job goes to the array with the smallest estimate (ties break on the
/// lower combined pressure `backlog + reload`, then lifetime compute load,
/// then index — deterministic), with a [`PrefetchDirective`] whenever that
/// array would otherwise reload on the launch's critical path.
///
/// This replaces [`ResidencyAware`]'s *idle-array* replication heuristic
/// with an explicit trade-off: a program is replicated onto another array
/// exactly when its reload costs fewer cycles than the backlog it escapes
/// — so small-program jobs replicate eagerly and spread, while a job
/// whose program is expensive to stream waits for its resident array
/// unless the queue is genuinely longer than the reload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostAware;

impl Placement for CostAware {
    fn name(&self) -> &'static str {
        "cost-aware"
    }

    fn place(&self, job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
        let reload = |a: &ArrayView| if a.warm { 0 } else { job.config_words as u64 };
        // Earliest estimated compute start on this array: a prefetched
        // reload queues on the configuration-load lane (behind the wave's
        // earlier reloads) and streams concurrently with the compute
        // backlog — the job starts when the later of the two finishes.
        let ready_at = |a: &ArrayView| {
            let reload_done = if a.warm {
                0
            } else {
                a.free_config_at + job.config_words as u64
            };
            a.free_compute_at.max(reload_done)
        };
        let chosen = arrays
            .iter()
            .min_by_key(|a| {
                (
                    ready_at(a),
                    // Prefer the cheaper total pressure on ties.
                    a.free_compute_at + reload(a),
                    a.busy_compute,
                    a.index,
                )
            })
            .expect("a pool has at least one array");
        if chosen.warm {
            PlacementPlan::run_on(chosen.index)
        } else {
            PlacementPlan::with_prefetch(chosen.index)
        }
    }
}

/// Residency-blind baseline: job *i* runs on array *i mod N*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundRobin;

impl Placement for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn place(&self, job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
        PlacementPlan::run_on(job.index % arrays.len())
    }
}

/// Load-balancing placement: route to the array with the fewest cumulative
/// compute-busy cycles (ties to the lowest index).  Ignores residency —
/// useful as the "balanced but residency-blind" comparison point between
/// [`RoundRobin`] and [`ResidencyAware`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoaded;

impl Placement for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
        PlacementPlan::run_on(
            arrays
                .iter()
                .min_by_key(|a| (a.busy_compute, a.index))
                .map(|a| a.index)
                .expect("a pool has at least one array"),
        )
    }
}

/// A fleet of [`Session`]s behind one [`Placement`] scheduler.
///
/// Every fan-out call ([`Pool::run_batch`] / [`Pool::run_stream`]) is one
/// *wave*: each array starts the wave with an empty
/// [`StreamSchedule`] (its engines free at
/// cycle 0), jobs are placed and run in submission order, and the wave's
/// merged [`FleetReport`] is returned.  *Residency persists across waves*:
/// the sessions keep their loaded programs, so a later wave's jobs launch
/// warm wherever earlier waves already placed their programs.
/// [`Pool::stats`] accumulates the per-array accounting over all waves.
///
/// See the [module docs](crate::pool) for the scheduling model and a
/// runnable example.
#[derive(Debug)]
pub struct Pool {
    arrays: Vec<Session>,
    placement: Box<dyn Placement>,
    stats: FleetReport,
    /// Configuration-word footprints by [`Kernel::cache_key`], so a
    /// program's [`Kernel::config_words`] is computed once per key rather
    /// than once per job (the hook may build the whole program to count).
    footprints: HashMap<String, usize>,
}

impl Pool {
    /// Creates a pool of `arrays` default sessions (paper geometry, LRU
    /// eviction) with the default [`CostAware`] placement.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is zero.
    pub fn new(arrays: usize) -> Self {
        Self::with_sessions((0..arrays).map(|_| Session::new()).collect())
            .expect("default sessions share one geometry")
    }

    /// Creates a pool over custom sessions (constrained geometries, custom
    /// eviction policies) with the default [`CostAware`] placement.
    ///
    /// A pool is a *homogeneous* fleet: every session must share one array
    /// geometry, so any job can run on any array and one geometry prices
    /// every program's reload ([`JobView::config_words`]).  Sessions may
    /// still differ in eviction policy or DMA timing.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::MixedGeometry`] if the sessions' array
    /// geometries differ (naming the first mismatched session), so a
    /// misconfigured fleet fails as a recoverable error instead of a
    /// panic.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty.
    pub fn with_sessions(sessions: Vec<Session>) -> Result<Self> {
        assert!(!sessions.is_empty(), "a pool needs at least one array");
        let geometry = *sessions[0].accelerator().geometry();
        if let Some(array) = sessions
            .iter()
            .position(|s| *s.accelerator().geometry() != geometry)
        {
            return Err(RuntimeError::MixedGeometry { array });
        }
        let stats = FleetReport::new(sessions.len());
        Ok(Self {
            arrays: sessions,
            placement: Box::new(CostAware),
            stats,
            footprints: HashMap::new(),
        })
    }

    /// Replaces the placement strategy, builder-style.
    #[must_use]
    pub fn with_placement(mut self, placement: impl Placement + 'static) -> Self {
        self.set_placement(placement);
        self
    }

    /// Replaces the placement strategy (resident programs are unaffected).
    pub fn set_placement(&mut self, placement: impl Placement + 'static) {
        self.placement = Box::new(placement);
    }

    /// Name of the active placement strategy.
    pub fn placement_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Number of arrays in the pool.
    pub fn arrays(&self) -> usize {
        self.arrays.len()
    }

    /// The session behind one array (residency inspection, tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn array(&self, index: usize) -> &Session {
        &self.arrays[index]
    }

    /// Mutable session access for the serving layer's per-window executor
    /// (which replays phases on its own schedules, like
    /// [`Pool::fan_out`]).
    pub(crate) fn session_mut(&mut self, index: usize) -> &mut Session {
        &mut self.arrays[index]
    }

    /// The active placement strategy — the serving layer re-consults it on
    /// dispatch and on every work-stealing re-route.
    pub(crate) fn strategy(&self) -> &dyn Placement {
        &*self.placement
    }

    /// Folds one externally-built wave (the serving layer's) into the
    /// pool's accumulated [`Pool::stats`].
    pub(crate) fn absorb_stats(&mut self, wave: &FleetReport) {
        self.stats.absorb(wave);
    }

    /// Accumulated fleet accounting over every wave run so far (per-array
    /// wall clocks add across waves, as if the waves ran back to back).
    pub fn stats(&self) -> &FleetReport {
        &self.stats
    }

    /// Fans a batch of `(kernel, windows)` jobs across the fleet and
    /// collects each job's outputs, in window order, grouped by job in
    /// submission order.
    ///
    /// Outputs are bit-identical to running every job serially on one
    /// [`Session`] — for any placement strategy.  The returned
    /// [`FleetReport`] carries this wave's per-array and fleet-level
    /// accounting.
    ///
    /// # Errors
    ///
    /// As [`Session::run`] on the chosen array, plus
    /// [`RuntimeError::Placement`] if the strategy returns an out-of-range
    /// array index.  The first error aborts the fan-out; the pool and its
    /// sessions stay valid and reusable.
    #[allow(clippy::type_complexity)]
    pub fn run_batch<'k, K, J, W>(&mut self, jobs: J) -> Result<(Vec<Vec<K::Output>>, FleetReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let jobs: Vec<(&K, W)> = jobs.into_iter().collect();
        let mut outputs: Vec<Vec<K::Output>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        let report = self.run_stream(jobs, |job, output| {
            outputs[job].push(output);
            Ok(())
        })?;
        Ok((outputs, report))
    }

    /// Streams a fan-out of `(kernel, windows)` jobs across the fleet,
    /// handing each output to `sink` together with its job's submission
    /// index, as soon as it is computed (jobs execute in submission order;
    /// within a job, windows in window order).
    ///
    /// # Errors
    ///
    /// As [`Pool::run_batch`]; an error returned by `sink` aborts the
    /// fan-out as [`RuntimeError::Sink`] does for [`Session::run_stream`].
    /// Work performed before the abort — cold reloads, invocations, busy
    /// cycles — is still folded into [`Pool::stats`], matching the
    /// sessions' own accounting of failed invocations.
    pub fn run_stream<'k, K, J, W, F>(&mut self, jobs: J, sink: F) -> Result<FleetReport>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let arrays = self.arrays.len();
        let mut schedules: Vec<StreamSchedule> =
            (0..arrays).map(|_| StreamSchedule::new()).collect();
        let mut wave = FleetReport::new(arrays);

        let result = self.fan_out(jobs, sink, &mut wave, &mut schedules);
        for (array, schedule) in wave.arrays.iter_mut().zip(schedules) {
            let timeline = schedule.finish();
            array.report.wall_cycles = timeline.wall_cycles();
            array.report.busy = timeline.occupancy();
        }
        // The wave's accounting survives an abort: the sessions did the
        // work, so the fleet statistics must show it.
        self.stats.absorb(&wave);
        result.map(|()| wave)
    }

    /// Configuration-word footprint of `kernel`'s program, computed once
    /// per cache key against the fleet's shared geometry (enforced by
    /// [`Pool::with_sessions`], so one geometry prices the reload on every
    /// array) and cached across jobs and waves.
    pub(crate) fn footprint<K: Kernel>(&mut self, kernel: &K, key: &str) -> Result<usize> {
        if let Some(&words) = self.footprints.get(key) {
            return Ok(words);
        }
        let geometry = *self.arrays[0].accelerator().geometry();
        let words = kernel.config_words(&geometry)?;
        self.footprints.insert(key.to_string(), words);
        Ok(words)
    }

    /// Executes one [`PrefetchDirective`]: stages `kernel`'s program on
    /// array `target` no earlier than `not_before` (cycle 0 for a batch
    /// fan-out, the dispatch cycle for the serving layer) and folds the
    /// streamed cycles into `wave`.
    ///
    /// Speculative staging is best-effort: a prefetch the target cannot
    /// satisfy (its configuration memory packed with pinned programs, say)
    /// is skipped, not fatal — the job's own launch then pays the reload,
    /// and a genuine error resurfaces there, on the authoritative path.
    pub(crate) fn stage_prefetch<K: Kernel>(
        &mut self,
        target: usize,
        kernel: &K,
        not_before: u64,
        schedules: &mut [StreamSchedule],
        wave: &mut FleetReport,
    ) {
        // The backlog *before* the prefetch decides whether the reload is
        // fully hidden (the ConfigLoad lane leaves the compute lane
        // untouched either way).
        let backlog = schedules[target].free_at(Engine::Compute);
        if let Ok(Some(staged)) = self.arrays[target].prefetch(kernel) {
            let span = schedules[target].prefetch_at(staged.config_cycles, not_before);
            let report = &mut wave.arrays[target].report;
            report.prefetched += 1;
            if span.end <= backlog {
                report.hidden_reloads += 1;
            }
            // The streamed words are real engine work: fold them into the
            // serial phase sum and the activity counters so work
            // conservation and energy accounting hold.
            report.cycles += staged.config_cycles;
            report.evictions += staged.evictions;
            report.counters += staged.counters;
        }
    }

    /// The job loop of [`Pool::run_stream`]: plans, prefetches and runs
    /// every job, recording into `wave`/`schedules` as it goes so the
    /// caller can salvage the accounting of an aborted fan-out.
    fn fan_out<'k, K, J, W, F>(
        &mut self,
        jobs: J,
        mut sink: F,
        wave: &mut FleetReport,
        schedules: &mut [StreamSchedule],
    ) -> Result<()>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let arrays = self.arrays.len();
        let out_of_range = |index: usize| RuntimeError::Placement { index, arrays };
        for (index, (kernel, windows)) in jobs.into_iter().enumerate() {
            let key = kernel.cache_key();
            let config_words = self.footprint(kernel, &key)?;
            // Windows are consumed lazily (constant memory in the window
            // count, like `Session::run_stream`); placement sees the
            // iterator's size hint.
            let windows = windows.into_iter();
            let windows_hint = windows.size_hint().0;
            let views: Vec<ArrayView> = self
                .arrays
                .iter()
                .enumerate()
                .map(|(i, session)| ArrayView {
                    index: i,
                    resident: session.is_resident_key(&key),
                    warm: session.is_warm(kernel),
                    free_compute_at: schedules[i].free_at(Engine::Compute),
                    free_config_at: schedules[i].free_at(Engine::ConfigLoad),
                    busy_compute: session.free_compute_at(),
                    loaded_programs: session.loaded_programs(),
                })
                .collect();
            let job = JobView {
                index,
                cache_key: &key,
                windows: windows_hint,
                config_words,
            };
            let plan = self.placement.place(&job, &views);
            let chosen = plan.array;
            if chosen >= arrays {
                return Err(out_of_range(chosen));
            }
            if let Some(directive) = plan.prefetch {
                let target = directive.array;
                if target >= arrays {
                    return Err(out_of_range(target));
                }
                self.stage_prefetch(target, kernel, 0, schedules, wave);
            }
            wave.jobs += 1;
            wave.arrays[chosen].jobs += 1;
            for window in windows {
                let (output, phases) = self.arrays[chosen].run_into(
                    kernel,
                    window.borrow(),
                    &mut wave.arrays[chosen].report,
                )?;
                schedules[chosen].push(phases);
                sink(index, output)?;
            }
        }
        Ok(())
    }

    /// Runs every job of the same shape on one fresh, unconstrained
    /// [`Session`], serially — the reference the pool's equivalence tests
    /// compare against.  Outputs are grouped by job in submission order;
    /// the returned [`RunReport`] aggregates the whole serial run.
    ///
    /// # Errors
    ///
    /// As [`Session::run`]; the first error aborts the run.
    #[allow(clippy::type_complexity)]
    pub fn run_serial_reference<'k, K, J, W>(jobs: J) -> Result<(Vec<Vec<K::Output>>, RunReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = (&'k K, W)>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let mut session = Session::new();
        let mut outputs = Vec::new();
        let mut total = RunReport::new("serial-reference");
        for (kernel, windows) in jobs {
            let mut job_outputs = Vec::new();
            for window in windows {
                let (output, report) = session.run(kernel, window.borrow())?;
                total.absorb(&report);
                job_outputs.push(output);
            }
            outputs.push(job_outputs);
        }
        Ok((outputs, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{constrained_sessions, BakedScaleKernel};
    use vwr2a_core::geometry::Geometry;

    fn baked_words() -> usize {
        BakedScaleKernel::new(1)
            .program(&Geometry::paper())
            .unwrap()
            .config_words()
    }

    fn windows(count: usize, seed: i32) -> Vec<Vec<i32>> {
        (0..count)
            .map(|w| (0..96).map(|i| i + seed + 7 * w as i32).collect())
            .collect()
    }

    /// One job per pick, 2 windows each, kernels indexed by `picks`.
    fn picked_jobs<'a>(
        kernels: &'a [BakedScaleKernel],
        picks: &[usize],
    ) -> Vec<(&'a BakedScaleKernel, Vec<Vec<i32>>)> {
        picks
            .iter()
            .enumerate()
            .map(|(j, &pick)| (&kernels[pick], windows(2, j as i32)))
            .collect()
    }

    /// Outputs of a fan-out, grouped by job, then window.
    type JobOutputs = Vec<Vec<Vec<i32>>>;

    /// Fans `picks`-selected kernels over a 2-array pool with 2-slot
    /// configuration memories, returning (pool outputs, fleet report,
    /// serial reference outputs).
    fn run_mixed(
        factors: &[i16],
        picks: &[usize],
        placement: impl Placement + 'static,
    ) -> (JobOutputs, FleetReport, JobOutputs) {
        let kernels: Vec<BakedScaleKernel> =
            factors.iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * baked_words()))
            .unwrap()
            .with_placement(placement);
        let jobs = picked_jobs(&kernels, picks);
        let (outputs, fleet) = pool
            .run_batch(
                jobs.iter()
                    .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
            )
            .unwrap();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        (outputs, fleet, serial)
    }

    /// 12 jobs cycling over 3 distinct programs.
    const THREE_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2];
    /// 12 jobs over 4 distinct programs in an irregular order, so
    /// round-robin cannot accidentally split the working set cleanly
    /// across the two arrays.
    const FOUR_KERNEL_PICKS: [usize; 12] = [0, 1, 2, 3, 2, 0, 1, 3, 0, 2, 3, 1];

    #[test]
    fn pool_outputs_match_serial_execution_for_every_strategy() {
        let factors = [2i16, 3, 5];
        let (ca, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, CostAware);
        assert_eq!(ca, serial);
        let (ra, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        assert_eq!(ra, serial);
        let (rr, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(rr, serial);
        let (ll, _, serial) = run_mixed(&factors, &THREE_KERNEL_PICKS, LeastLoaded);
        assert_eq!(ll, serial);
    }

    #[test]
    fn cost_aware_prefetch_turns_every_reload_warm() {
        // Same capacity-pressure scenario as the residency-aware test: 2
        // arrays, 3 distinct programs, 2-slot memories.  Cost-aware
        // placement stages every first-per-array reload speculatively, so
        // no launch ever pays configuration streaming on its critical
        // path.
        let factors = [2i16, 3, 5];
        let (_, cost_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, CostAware);
        assert_eq!(cost_aware.cold_reloads(), 0, "all reloads prefetched");
        assert!(cost_aware.prefetched() >= 3, "one stage per program-array");
        assert_eq!(
            cost_aware.warm_launches(),
            cost_aware.invocations(),
            "every launch found its program warm"
        );
        // The total reload bill is visible: prefetches replace cold
        // launches one for one, never silently disappear.
        let (_, residency_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        assert!(
            cost_aware.cold_reloads() + cost_aware.prefetched() >= residency_aware.cold_reloads()
        );
    }

    #[test]
    fn residency_aware_beats_round_robin_on_cold_reloads() {
        // The satellite scenario: 2 arrays, 3 distinct kernels, 2-slot
        // configuration memories.  Residency-aware placement pins each
        // program to "its" array and goes cold exactly once per program;
        // round-robin alternates every program across both 2-slot
        // memories — each array cycles through all 3 programs and keeps
        // re-streaming configuration words.
        let factors = [2i16, 3, 5];
        let (_, residency_aware, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, ResidencyAware);
        let (_, round_robin, _) = run_mixed(&factors, &THREE_KERNEL_PICKS, RoundRobin);
        assert_eq!(
            residency_aware.cold_reloads(),
            3,
            "each of the 3 programs loads cold exactly once"
        );
        assert_eq!(residency_aware.evictions(), 0);
        assert!(
            residency_aware.cold_reloads() < round_robin.cold_reloads(),
            "residency-aware {} cold reloads must beat round-robin {}",
            residency_aware.cold_reloads(),
            round_robin.cold_reloads()
        );
        assert!(round_robin.evictions() > 0, "3 programs thrash 2 slots");
    }

    /// A launch-only kernel with a NOP-padded program: a distinct program
    /// per `key`, sized so cold configuration streaming is expensive
    /// relative to the (DMA-free) execution — the shape on which placement
    /// quality shows up in the fleet wall clock.
    struct PaddedKernel {
        key: String,
    }

    impl PaddedKernel {
        const ROWS: usize = 24;

        fn new(key: &str) -> Self {
            Self {
                key: key.to_string(),
            }
        }

        fn words() -> usize {
            PaddedKernel::new("probe")
                .program(&Geometry::paper())
                .unwrap()
                .config_words()
        }
    }

    impl Kernel for PaddedKernel {
        type Input = ();
        type Output = u64;
        fn name(&self) -> &str {
            "padded"
        }
        fn cache_key(&self) -> String {
            self.key.clone()
        }
        fn resources(&self) -> crate::session::Resources {
            crate::session::Resources::default()
        }
        fn program(&self, g: &Geometry) -> Result<vwr2a_core::program::KernelProgram> {
            use vwr2a_core::program::{ColumnProgram, Row};
            let mut rows = vec![Row::new(g.rcs_per_column); Self::ROWS];
            rows.push(Row::new(g.rcs_per_column).lcu(vwr2a_core::isa::LcuInstr::Exit));
            Ok(vwr2a_core::program::KernelProgram::new(
                &self.key,
                vec![ColumnProgram::new(rows)?],
            )?)
        }
        fn execute(&self, ctx: &mut crate::session::LaunchCtx<'_>, _input: &()) -> Result<u64> {
            ctx.launch()
        }
    }

    #[test]
    fn residency_aware_beats_round_robin_on_fleet_occupancy() {
        // The bench-bin acceptance claim: on a mixed-kernel sweep whose
        // working set fills the fleet (4 programs over 2 × 2 slots),
        // residency-aware placement spreads the programs across the
        // arrays once and then runs warm and balanced, while round-robin
        // keeps every array cycling through all 4 programs — the extra
        // configuration streaming sits on each array's critical path, so
        // a smaller fraction of the fleet's array-cycles goes to compute.
        let kernels: Vec<PaddedKernel> = (0..4)
            .map(|k| PaddedKernel::new(&format!("p{k}")))
            .collect();
        let run = |placement: Box<dyn Placement>| {
            let mut pool =
                Pool::with_sessions(constrained_sessions(2, 2 * PaddedKernel::words())).unwrap();
            pool.placement = placement;
            let (_, fleet) = pool
                .run_batch(
                    FOUR_KERNEL_PICKS
                        .iter()
                        .map(|&pick| (&kernels[pick], vec![(); 2])),
                )
                .unwrap();
            fleet
        };
        let residency_aware = run(Box::new(ResidencyAware));
        let round_robin = run(Box::new(RoundRobin));
        assert_eq!(residency_aware.cold_reloads(), 4);
        assert_eq!(residency_aware.evictions(), 0);
        assert!(round_robin.evictions() > 0);
        assert!(
            round_robin.cold_reloads() > residency_aware.cold_reloads(),
            "round-robin must thrash the 2-slot memories"
        );
        assert!(
            residency_aware.occupancy() > round_robin.occupancy(),
            "occupancy {:.3} must beat {:.3}",
            residency_aware.occupancy(),
            round_robin.occupancy()
        );
        assert!(residency_aware.wall_cycles() < round_robin.wall_cycles());

        // The tentpole claim on the same workload: prefetching the reloads
        // off the critical path beats even the residency-aware scheduler —
        // strictly fewer cold reloads (none) and a strictly lower fleet
        // wall clock, with some reloads fully hidden inside backlogs.
        let cost_aware = run(Box::new(CostAware));
        assert_eq!(cost_aware.cold_reloads(), 0);
        assert!(cost_aware.prefetched() >= 4);
        assert!(
            cost_aware.wall_cycles() < residency_aware.wall_cycles(),
            "cost-aware wall {} must beat residency-aware {}",
            cost_aware.wall_cycles(),
            residency_aware.wall_cycles()
        );
        assert_eq!(cost_aware.evictions(), 0);
    }

    #[test]
    fn fleet_wall_clock_and_busy_conserve_the_per_array_schedules() {
        // With prefetch (CostAware) the staged configuration cycles land on
        // the schedules' ConfigLoad lanes *and* in the per-array `cycles`,
        // so the same conservation identity must hold for both strategies.
        for fleet in [
            run_mixed(&[2i16, 3, 5], &THREE_KERNEL_PICKS, ResidencyAware).1,
            run_mixed(&[2i16, 3, 5], &THREE_KERNEL_PICKS, CostAware).1,
        ] {
            let max_wall = fleet
                .arrays
                .iter()
                .map(|a| a.report.wall_cycles)
                .max()
                .unwrap();
            assert_eq!(fleet.wall_cycles(), max_wall);
            for array in &fleet.arrays {
                assert!(fleet.wall_cycles() >= array.report.wall_cycles);
                // Per-array work conservation, as in the schedule proptest:
                // every phase cycle — prefetched streaming included —
                // appears exactly once in the occupancy.
                assert_eq!(
                    array.report.busy.config_load
                        + array.report.busy.dma
                        + array.report.busy.compute,
                    array.report.cycles
                );
            }
            let busy_sum = fleet
                .arrays
                .iter()
                .map(|a| a.report.busy.total())
                .sum::<u64>();
            assert_eq!(fleet.busy().total(), busy_sum);
        }
    }

    #[test]
    fn placement_sees_residency_and_balances_new_programs() {
        let kernels: Vec<BakedScaleKernel> =
            [2, 3].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = (0..4)
            .map(|j| (&kernels[j % 2], windows(1, j as i32)))
            .collect();
        pool.run_batch(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        // The two distinct programs must have been spread over the two
        // arrays (the second program's reload is cheaper than queueing
        // behind the first job's backlog), and each repeat went back to
        // its warm array.
        assert!(pool.array(0).is_resident(&kernels[0]));
        assert!(pool.array(1).is_resident(&kernels[1]));
        assert!(!pool.array(0).is_resident(&kernels[1]));
        assert!(!pool.array(1).is_resident(&kernels[0]));
    }

    #[test]
    fn residency_persists_across_waves() {
        let kernel = BakedScaleKernel::new(9);
        let mut pool = Pool::new(2);
        let ws = windows(2, 0);
        let (_, first) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        // The default cost-aware placement stages the one reload ahead of
        // the launch: prefetched, never cold.
        assert_eq!(first.cold_reloads(), 0);
        assert_eq!(first.prefetched(), 1);
        let (_, second) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(second.prefetched(), 0, "wave 2 finds the program warm");
        assert_eq!(second.cold_reloads(), 0);
        // stats() accumulated both waves.
        assert_eq!(pool.stats().jobs, 2);
        assert_eq!(pool.stats().cold_reloads(), 0);
        assert_eq!(pool.stats().prefetched(), 1);
        assert_eq!(pool.stats().invocations(), 4);
    }

    #[test]
    fn run_stream_delivers_outputs_with_job_indices() {
        let kernels: Vec<BakedScaleKernel> =
            [4, 5].iter().map(|&f| BakedScaleKernel::new(f)).collect();
        let mut pool = Pool::new(2);
        let mut seen: Vec<(usize, i32)> = Vec::new();
        let window = [10i32, 20];
        let report = pool
            .run_stream(
                (0..3).map(|j| (&kernels[j % 2], [window.as_slice()])),
                |job, out| {
                    seen.push((job, out[0]));
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(seen, vec![(0, 40), (1, 50), (2, 40)]);
        assert_eq!(report.jobs, 3);
        assert_eq!(report.invocations(), 3);
    }

    #[test]
    fn sink_error_aborts_the_fan_out_but_the_pool_stays_usable() {
        let kernel = BakedScaleKernel::new(3);
        let mut pool = Pool::new(2);
        let ws = windows(3, 0);
        let err = pool
            .run_stream([(&kernel, ws.iter().map(Vec::as_slice))], |_, _| {
                Err(RuntimeError::sink("downstream is full"))
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        // The aborted wave's work is not lost from the fleet statistics:
        // the (prefetched) configuration stream physically ran.
        assert_eq!(pool.stats().jobs, 1);
        assert_eq!(pool.stats().cold_reloads(), 0);
        assert_eq!(pool.stats().prefetched(), 1);
        assert_eq!(pool.stats().invocations(), 1);
        assert!(pool.stats().busy().compute > 0);
        assert!(pool.stats().busy().config_load > 0);
        // The placed program stays resident; the next wave runs warm.
        let (_, report) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        assert_eq!(report.cold_reloads(), 0);
        assert_eq!(report.prefetched(), 0);
    }

    #[test]
    fn rogue_placement_fails_cleanly() {
        #[derive(Debug)]
        struct OutOfRange;
        impl Placement for OutOfRange {
            fn name(&self) -> &'static str {
                "out-of-range"
            }
            fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
                PlacementPlan::run_on(arrays.len() + 3)
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let mut pool = Pool::new(2).with_placement(OutOfRange);
        let ws = windows(1, 0);
        let err = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Placement {
                    index: 5,
                    arrays: 2
                }
            ),
            "expected Placement, got {err:?}"
        );
        // Nothing ran, and the pool recovers with a sane strategy.
        pool.set_placement(ResidencyAware);
        assert_eq!(pool.placement_name(), "residency-aware");
        pool.run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn rogue_prefetch_directive_fails_cleanly() {
        // A directive naming a non-existent array must abort like a rogue
        // target array — before any prefetch or window runs.
        #[derive(Debug)]
        struct RoguePrefetch;
        impl Placement for RoguePrefetch {
            fn name(&self) -> &'static str {
                "rogue-prefetch"
            }
            fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
                PlacementPlan {
                    array: 0,
                    prefetch: Some(PrefetchDirective {
                        array: arrays.len(),
                    }),
                }
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let mut pool = Pool::new(2).with_placement(RoguePrefetch);
        let ws = windows(1, 0);
        let err = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Placement {
                    index: 2,
                    arrays: 2
                }
            ),
            "expected Placement, got {err:?}"
        );
        assert_eq!(pool.stats().jobs, 0);
        assert_eq!(pool.stats().prefetched(), 0);
        // The pool recovers with the default strategy.
        pool.set_placement(CostAware);
        pool.run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn prefetch_directives_may_warm_a_different_array() {
        // A strategy can replicate a program onto another array ahead of
        // anticipated load: the job runs on array 0, the directive warms
        // array 1, and the next wave launches warm on either.
        #[derive(Debug)]
        struct WarmTheOther;
        impl Placement for WarmTheOther {
            fn name(&self) -> &'static str {
                "warm-the-other"
            }
            fn place(&self, _job: &JobView<'_>, _arrays: &[ArrayView]) -> PlacementPlan {
                PlacementPlan {
                    array: 0,
                    prefetch: Some(PrefetchDirective { array: 1 }),
                }
            }
        }
        let kernel = BakedScaleKernel::new(7);
        let mut pool = Pool::new(2).with_placement(WarmTheOther);
        let ws = windows(1, 0);
        let (_, fleet) = pool
            .run_batch([(&kernel, ws.iter().map(Vec::as_slice))])
            .unwrap();
        // Array 1 was warmed speculatively; array 0 ran the job cold (its
        // own reload was not staged).
        assert_eq!(fleet.prefetched(), 1);
        assert_eq!(fleet.cold_reloads(), 1);
        assert!(pool.array(0).is_warm(&kernel));
        assert!(pool.array(1).is_warm(&kernel));
        assert_eq!(pool.array(1).prefetches(), 1);
    }

    #[test]
    fn unsatisfiable_prefetches_are_skipped_not_fatal() {
        // A program larger than the whole configuration memory: the
        // directed prefetch cannot be satisfied and is skipped; the
        // genuine error then surfaces from the job's own launch path, and
        // no phantom prefetch is recorded.
        let kernels: Vec<BakedScaleKernel> = [2i16, 3]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, baked_words() - 1)).unwrap();
        let ws = windows(1, 0);
        let err = pool
            .run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Core(vwr2a_core::CoreError::ConfigMemoryFull { .. })
            ),
            "expected ConfigMemoryFull from the launch path, got {err:?}"
        );
        assert_eq!(
            pool.stats().prefetched(),
            0,
            "the failed stage is not counted"
        );
        // The pool stays reusable for jobs that do fit.
        let mut roomy = Pool::new(1);
        roomy
            .run_batch([(&kernels[0], ws.iter().map(Vec::as_slice))])
            .unwrap();
    }

    #[test]
    fn compute_backlogs_hide_prefetched_reloads_completely() {
        // One array, two compute-heavy jobs with distinct programs: the
        // second job's reload streams on the ConfigLoad lane entirely
        // inside the first job's compute backlog — a reload at zero
        // wall-clock cost, which a cold launch could never be.
        let first = BakedScaleKernel::new(2);
        let second = BakedScaleKernel::new(3);
        let ws = windows(6, 0);
        let mut pool = Pool::new(1);
        let (_, fleet) = pool
            .run_batch([
                (&first, ws.iter().map(Vec::as_slice)),
                (&second, ws.iter().map(Vec::as_slice)),
            ])
            .unwrap();
        assert_eq!(fleet.cold_reloads(), 0);
        assert_eq!(fleet.prefetched(), 2);
        assert_eq!(
            fleet.hidden_reloads(),
            1,
            "the first reload has no backlog to hide in; the second does"
        );
    }

    #[test]
    fn stats_accumulate_consistently_across_waves_and_errors() {
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let mut pool = Pool::with_sessions(constrained_sessions(2, 2 * baked_words())).unwrap();
        let ws = windows(2, 0);

        // Wave 1: two jobs over two programs.
        pool.run_batch(
            kernels[..2]
                .iter()
                .map(|k| (k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        let after_one = pool.stats().clone();
        assert_eq!(after_one.jobs, 2);
        assert_eq!(after_one.invocations(), 4);

        // Wave 2: all three programs; counters strictly accumulate.
        pool.run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap();
        let after_two = pool.stats().clone();
        assert_eq!(after_two.jobs, 5);
        assert_eq!(after_two.invocations(), 10);
        assert!(after_two.prefetched() >= after_one.prefetched());
        assert!(after_two.busy().total() > after_one.busy().total());

        // Wave 3 aborts in the sink after one window: the partial work is
        // still folded in (the first job's window ran).
        let err = pool
            .run_stream(
                kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))),
                |_, _| Err(RuntimeError::sink("full")),
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Sink { .. }));
        let after_abort = pool.stats().clone();
        assert_eq!(after_abort.jobs, 6, "the aborted job still counts");
        assert_eq!(after_abort.invocations(), 11);

        // Wave 4 aborts in placement before anything runs: no counters
        // move at all.
        #[derive(Debug)]
        struct Rogue;
        impl Placement for Rogue {
            fn name(&self) -> &'static str {
                "rogue"
            }
            fn place(&self, _job: &JobView<'_>, arrays: &[ArrayView]) -> PlacementPlan {
                PlacementPlan::run_on(arrays.len())
            }
        }
        pool.set_placement(Rogue);
        assert!(pool
            .run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .is_err());
        assert_eq!(pool.stats(), &after_abort, "a rogue wave adds nothing");

        // The pool stays fully usable, and the invariants hold over the
        // whole accumulated history: per-array jobs sum to the total, and
        // every array's busy split matches its serial phase sum.
        pool.set_placement(CostAware);
        pool.run_batch(kernels.iter().map(|k| (k, ws.iter().map(Vec::as_slice))))
            .unwrap();
        let stats = pool.stats();
        assert_eq!(stats.jobs, 9);
        assert_eq!(stats.invocations(), 17);
        assert_eq!(stats.arrays.iter().map(|a| a.jobs).sum::<u64>(), stats.jobs);
        for array in &stats.arrays {
            assert_eq!(
                array.report.busy.config_load + array.report.busy.dma + array.report.busy.compute,
                array.report.cycles
            );
        }
        assert_eq!(
            stats.busy().total(),
            stats.arrays.iter().map(|a| a.report.busy.total()).sum()
        );
    }

    #[test]
    fn empty_fan_out_is_free() {
        let mut pool = Pool::new(3);
        let (outputs, report) = pool
            .run_batch(std::iter::empty::<(&BakedScaleKernel, Vec<&[i32]>)>())
            .unwrap();
        assert!(outputs.is_empty());
        assert_eq!(report.jobs, 0);
        assert_eq!(report.wall_cycles(), 0);
        assert_eq!(report.occupancy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn zero_array_pools_are_rejected() {
        let _ = Pool::new(0);
    }

    #[test]
    fn mixed_geometry_fleets_fail_as_a_typed_error() {
        // Sessions whose geometries differ (here: configuration-memory
        // capacity) cannot form a pool — one geometry must price every
        // reload — and the error names the first mismatched session.
        let mut sessions = constrained_sessions(2, 2 * baked_words());
        sessions.extend(constrained_sessions(1, baked_words()));
        let err = Pool::with_sessions(sessions).unwrap_err();
        assert_eq!(err, RuntimeError::MixedGeometry { array: 2 });
        assert!(err.to_string().contains("session 2"));
        // A homogeneous fleet of the same constrained sessions is fine.
        let pool = Pool::with_sessions(constrained_sessions(3, baked_words())).unwrap();
        assert_eq!(pool.arrays(), 3);
    }
}
