//! Error type of the Session runtime.

use std::error::Error;
use std::fmt;
use vwr2a_core::CoreError;

/// Errors raised while registering or running kernels through a
/// [`crate::Session`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The underlying array simulator reported an error.
    Core(CoreError),
    /// A kernel's declared resource needs exceed the session's geometry.
    Resources {
        /// Name of the offending kernel.
        kernel: String,
        /// Human-readable description of the violated limit.
        what: String,
    },
    /// A kernel rejected its input (wrong length, unsupported size, …).
    InvalidInput {
        /// Human-readable description.
        what: String,
    },
    /// The caller's output sink rejected a streamed result, aborting the
    /// stream (the session itself stays valid and reusable).
    Sink {
        /// Human-readable description.
        what: String,
    },
    /// A [`crate::pool::Placement`] strategy returned an array index
    /// outside the pool, aborting the fan-out (the pool itself stays valid
    /// and reusable).
    Placement {
        /// The offending array index the strategy returned.
        index: usize,
        /// Number of arrays in the pool.
        arrays: usize,
    },
    /// A [`crate::serve::SchedPolicy`] returned a queue slot outside the
    /// admission queue, aborting the serve run (the server itself stays
    /// valid and reusable).
    Sched {
        /// The offending queue slot the policy returned.
        index: usize,
        /// Number of jobs queued at the time.
        queued: usize,
    },
    /// A kernel cannot be built for a CGRA backend's array geometry.
    /// Mixed-geometry fleets are legal — reloads are priced per geometry —
    /// but a kernel whose program does not map onto a given geometry is
    /// *genuinely incompatible* with that backend: routing it there (or
    /// finding no backend at all that can take it) aborts the fan-out, and
    /// the pool stays valid and reusable.
    MixedGeometry {
        /// Index of the backend whose geometry cannot build the program.
        array: usize,
    },
    /// A job was routed to a backend that cannot serve it: the backend's
    /// capability mask does not cover the kernel's execution classes (e.g.
    /// a non-FFT job on the fixed-function FFT engine), or a kernel's
    /// default offload hook was invoked without an implementation.
    Capability {
        /// Name of the kernel.
        kernel: String,
        /// The backend (kind or index) that cannot serve it.
        backend: String,
    },
}

impl RuntimeError {
    /// Convenience constructor for input-validation failures inside
    /// [`crate::Kernel::execute`] implementations.
    pub fn invalid_input(what: impl Into<String>) -> Self {
        RuntimeError::InvalidInput { what: what.into() }
    }

    /// Convenience constructor for sink failures inside
    /// [`crate::Session::run_stream`] callbacks.
    pub fn sink(what: impl Into<String>) -> Self {
        RuntimeError::Sink { what: what.into() }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Core(e) => write!(f, "array error: {e}"),
            RuntimeError::Resources { kernel, what } => {
                write!(f, "kernel `{kernel}` exceeds the array resources: {what}")
            }
            RuntimeError::InvalidInput { what } => write!(f, "invalid input: {what}"),
            RuntimeError::Sink { what } => write!(f, "output sink failed: {what}"),
            RuntimeError::Placement { index, arrays } => write!(
                f,
                "placement strategy chose array {index} of a {arrays}-array pool"
            ),
            RuntimeError::Sched { index, queued } => write!(
                f,
                "scheduling policy chose queue slot {index} of {queued} queued job(s)"
            ),
            RuntimeError::MixedGeometry { array } => write!(
                f,
                "kernel cannot be mapped onto backend {array}'s array geometry \
                 in this mixed-geometry fleet"
            ),
            RuntimeError::Capability { kernel, backend } => write!(
                f,
                "kernel `{kernel}` is not servable by the {backend} backend"
            ),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RuntimeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for RuntimeError {
    fn from(e: CoreError) -> Self {
        RuntimeError::Core(e)
    }
}

/// Convenience alias used across the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: RuntimeError = CoreError::UnknownKernel {
            slot: 3,
            generation: 0,
        }
        .into();
        assert!(e.to_string().contains("array error"));
        assert!(e.source().is_some());
        let e = RuntimeError::Resources {
            kernel: "fft".into(),
            what: "needs 3 columns".into(),
        };
        assert!(e.to_string().contains("fft"));
        assert!(e.source().is_none());
        assert!(RuntimeError::invalid_input("nope")
            .to_string()
            .contains("nope"));
        assert!(RuntimeError::sink("disk full")
            .to_string()
            .contains("disk full"));
        let e = RuntimeError::Placement {
            index: 7,
            arrays: 2,
        };
        assert!(e.to_string().contains("array 7"));
        assert!(e.source().is_none());
        let e = RuntimeError::Sched {
            index: 9,
            queued: 4,
        };
        assert!(e.to_string().contains("queue slot 9"));
        assert!(e.source().is_none());
        let e = RuntimeError::MixedGeometry { array: 1 };
        assert!(e.to_string().contains("backend 1"));
        assert!(e.source().is_none());
        let e = RuntimeError::Capability {
            kernel: "scale".into(),
            backend: "fft-accel".into(),
        };
        assert!(e.to_string().contains("scale"));
        assert!(e.to_string().contains("fft-accel"));
        assert!(e.source().is_none());
    }
}
