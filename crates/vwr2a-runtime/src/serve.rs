//! Online serving layer: a multi-tenant admission queue in front of the
//! [`Pool`], with deadline-aware dispatch, work stealing and latency
//! percentiles.
//!
//! # The serving model
//!
//! A [`Pool`] fan-out executes a *fixed job list* handed over up front.
//! Real traffic is an **arrival stream**: jobs land over time from many
//! tenants, each stamped with an arrival cycle, a priority and an
//! optional deadline — and an operator watches p99 latency, not batch
//! wall cycles.  A [`Server`] wraps a pool and consumes exactly that
//! stream:
//!
//! 1. **Admission** — a [`ServeJob`] enters the admission queue at its
//!    [`ServeJob::arrival_cycle`]; nothing about it is scheduled before
//!    then (the per-array schedules clamp every phase to the dispatch
//!    cycle, so an idle array shows the wait as idle time, not work done
//!    in the past).
//! 2. **Dispatch** — whenever a backend has room in its (bounded) run
//!    queue, the pluggable [`SchedPolicy`] picks which admitted job goes
//!    next: [`Fifo`] in arrival order, [`EarliestDeadlineFirst`] by
//!    deadline, or [`WeightedFair`] deficit-round-robin across tenants so
//!    one chatty tenant cannot starve the rest.  The pool's
//!    [`Placement`](crate::pool::Placement) strategy then chooses the
//!    backend — CGRA array, FFT engine or host CPU, over *projected*
//!    backlogs (schedule horizon plus the estimated cost of jobs already
//!    queued there) and the per-backend reload/window pricing computed
//!    once at admission ([`Pool::price_job`](crate::pool::Pool)) — and
//!    any [`PlacementPlan`] prefetch directive stages the job's reload
//!    speculatively from the dispatch cycle on.  A job is only ever
//!    committed to a backend that can actually serve it; when every such
//!    backend is depth-full the job waits in the queue.
//! 3. **Stealing** — placement decisions go stale: backlog estimates are
//!    learned online, so a backend can drift ahead of the fleet with jobs
//!    still queued behind it.  The stealing pass re-routes queued (not
//!    yet started) jobs from the most backlogged backend to the earliest
//!    free one, re-consulting [`Placement`](crate::pool::Placement) so cost-aware prefetch
//!    directives fire on the new target.  Every move must strictly
//!    improve the pair's projected finish, and steals respect the job's
//!    capability classes — a CGRA-only job is never stolen onto the FFT
//!    engine, nor an FFT-only job onto an array.
//! 4. **Reporting** — each completed job yields a
//!    [`JobLatency`] split into queueing and
//!    service cycles plus a deadline verdict; the run's
//!    [`ServeReport`] derives p50/p95/p99
//!    percentiles, per-tenant totals, the deadline-miss count and the
//!    steal count on top of the usual fleet accounting.
//!
//! Outputs are **bit-identical** to running every job serially in
//! submission order ([`Pool::run_serial_reference`]) for every policy,
//! with or without stealing — scheduling only moves *where and when* the
//! already-verified work executes.
//!
//! # Example
//!
//! ```
//! use vwr2a_runtime::pool::Pool;
//! use vwr2a_runtime::serve::{ServeJob, Server, WeightedFair};
//! use vwr2a_runtime::testing::BakedScaleKernel;
//!
//! # fn main() -> Result<(), vwr2a_runtime::RuntimeError> {
//! let mut server = Server::new(Pool::new(2)).with_policy(WeightedFair::new());
//! let double = BakedScaleKernel::new(2);
//! let windows: Vec<Vec<i32>> = (0..3).map(|w| vec![w; 32]).collect();
//!
//! // Four jobs from two tenants, arriving 500 cycles apart; the last one
//! // carries a deadline.
//! let jobs = (0..4u64).map(|j| {
//!     let job = ServeJob::new(
//!         &double,
//!         windows.iter().map(Vec::as_slice),
//!         (j % 2) as u32,
//!         j * 500,
//!     );
//!     if j == 3 {
//!         job.with_deadline(60_000)
//!     } else {
//!         job
//!     }
//! });
//! let (outputs, report) = server.run_batch(jobs)?;
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(report.deadline_misses(), 0);
//! assert!(report.p99() >= report.p50());
//! # Ok(())
//! # }
//! ```

use std::borrow::Borrow;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

use vwr2a_core::timeline::Engine;
use vwr2a_energy::EnergyModel;

use crate::backend::{run_window_on, BackendKind};
use crate::error::{Result, RuntimeError};
use crate::pipeline::StreamSchedule;
use crate::pool::{BackendPrice, BackendView, JobView, PlacementPlan, Pool};
use crate::report::{FleetReport, JobLatency, JobRoute, PlannerStats, ServeReport};
use crate::session::Kernel;

/// Identifies the tenant a [`ServeJob`] belongs to.  Tenants are the unit
/// of fairness for [`WeightedFair`] scheduling and of the per-tenant
/// aggregates in a [`ServeReport`].
pub type TenantId = u32;

/// One arrival-stamped job of a serving stream: a kernel, its window
/// stream, and the scheduling metadata the admission queue orders by.
#[derive(Debug, Clone)]
pub struct ServeJob<K, W> {
    /// The kernel to run (for [`Server::run_stream`]: a `&K` reference,
    /// mirroring the pool's job tuples).
    pub kernel: K,
    /// The job's window stream, consumed lazily at execution time.
    pub windows: W,
    /// Tenant that submitted the job.
    pub tenant: TenantId,
    /// Cycle at which the job enters the admission queue.  Nothing about
    /// the job is scheduled before this cycle.
    pub arrival_cycle: u64,
    /// Scheduling priority (higher is more urgent; `0` by default).
    /// [`EarliestDeadlineFirst`] and [`WeightedFair`] use it to order
    /// jobs that tie on their primary key; [`Fifo`] ignores it.
    pub priority: u8,
    /// Optional completion deadline.  A job finishing after this cycle
    /// counts as a deadline miss; jobs without one never miss.
    pub deadline_cycle: Option<u64>,
}

impl<K, W> ServeJob<K, W> {
    /// A default-priority job with no deadline.
    pub fn new(kernel: K, windows: W, tenant: TenantId, arrival_cycle: u64) -> Self {
        Self {
            kernel,
            windows,
            tenant,
            arrival_cycle,
            priority: 0,
            deadline_cycle: None,
        }
    }

    /// Sets the scheduling priority, builder-style.
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the completion deadline, builder-style.
    #[must_use]
    pub fn with_deadline(mut self, deadline_cycle: u64) -> Self {
        self.deadline_cycle = Some(deadline_cycle);
        self
    }
}

/// What a [`SchedPolicy`] sees about one admitted job when asked to pick
/// the next dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob<'a> {
    /// Submission index of the job in the arrival stream.
    pub seq: usize,
    /// Tenant that submitted the job.
    pub tenant: TenantId,
    /// The job's arrival cycle.
    pub arrival_cycle: u64,
    /// The job's priority (higher is more urgent).
    pub priority: u8,
    /// The job's deadline, if any.
    pub deadline_cycle: Option<u64>,
    /// Lower-bound size hint of the job's window stream (exact for
    /// slice- and `Vec`-backed streams) — the cost proxy
    /// [`WeightedFair`]'s deficit counters charge against.
    pub windows: usize,
    /// The job kernel's [`Kernel::cache_key`].
    pub cache_key: &'a str,
}

/// Orders the admission queue: picks which admitted job is dispatched
/// next.
///
/// The policy is consulted once per dispatch with the current cycle and
/// the full admission queue (never empty), and returns the index of the
/// chosen job in that slice.  An out-of-range index aborts the run with
/// [`RuntimeError::Sched`] (the server stays valid and reusable).
/// Policies may keep state across calls (deficit counters, aging) but
/// must be deterministic so serving experiments are reproducible.
pub trait SchedPolicy: fmt::Debug + Send {
    /// Short policy name used in reports and bench tables.
    fn name(&self) -> &'static str;

    /// Returns the queue index of the job to dispatch next.
    ///
    /// `queue` is never empty; `now` is the current cycle (for policies
    /// that age or expire entries — the built-in three ignore it).
    fn select(&mut self, now: u64, queue: &[QueuedJob<'_>]) -> usize;
}

/// First-come, first-served: dispatch in arrival order (ties on the
/// submission index).  Ignores priorities and deadlines — the baseline
/// the serve bench compares against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl SchedPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn select(&mut self, _now: u64, queue: &[QueuedJob<'_>]) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| (q.arrival_cycle, q.seq))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Deadline-aware dispatch: the job with the earliest deadline goes
/// first; jobs without a deadline queue behind every deadlined one.
/// Ties break on priority (higher first), then arrival, then submission
/// index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarliestDeadlineFirst;

impl SchedPolicy for EarliestDeadlineFirst {
    fn name(&self) -> &'static str {
        "edf"
    }

    fn select(&mut self, _now: u64, queue: &[QueuedJob<'_>]) -> usize {
        queue
            .iter()
            .enumerate()
            .min_by_key(|(_, q)| {
                (
                    q.deadline_cycle.unwrap_or(u64::MAX),
                    std::cmp::Reverse(q.priority),
                    q.arrival_cycle,
                    q.seq,
                )
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Deficit-round-robin fairness across tenants: each tenant's queue is
/// served in proportion to its weight, so one chatty tenant cannot
/// starve the rest.
///
/// Every time the round-robin cursor visits a tenant, the tenant's
/// *deficit* counter grows by `quantum × weight`; the tenant's head job
/// (highest priority, then earliest arrival) dispatches once the deficit
/// covers its cost — the job's window count, so long jobs drain
/// proportionally more of their tenant's budget than short ones.  A
/// tenant that keeps the cursor (its deficit still covers its next head
/// job) is served without new quantum, and deficits of tenants with
/// nothing queued are dropped, so credit cannot be hoarded while idle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeightedFair {
    quantum: u64,
    weights: HashMap<TenantId, u64>,
    deficits: HashMap<TenantId, u64>,
    current: Option<TenantId>,
}

impl WeightedFair {
    /// Equal-weight deficit round-robin with a quantum of 1.
    pub fn new() -> Self {
        Self {
            quantum: 1,
            ..Self::default()
        }
    }

    /// Sets a tenant's weight (default 1), builder-style.  A tenant of
    /// weight *w* accrues *w×* the quantum per round-robin visit, i.e.
    /// *w×* the service share of a weight-1 tenant under saturation.
    /// Zero-weight tenants are clamped to 1 (every tenant makes
    /// progress — this is fairness, not starvation).
    #[must_use]
    pub fn with_weight(mut self, tenant: TenantId, weight: u64) -> Self {
        self.weights.insert(tenant, weight.max(1));
        self
    }

    /// Sets the per-visit quantum (default 1), builder-style.  Larger
    /// quanta let a tenant burst longer before the cursor moves on.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u64) -> Self {
        self.quantum = quantum.max(1);
        self
    }

    fn weight(&self, tenant: TenantId) -> u64 {
        self.weights.get(&tenant).copied().unwrap_or(1)
    }

    /// Index of `tenant`'s head job: highest priority, then earliest
    /// arrival, then submission order.
    fn head(queue: &[QueuedJob<'_>], tenant: TenantId) -> usize {
        queue
            .iter()
            .enumerate()
            .filter(|(_, q)| q.tenant == tenant)
            .min_by_key(|(_, q)| (std::cmp::Reverse(q.priority), q.arrival_cycle, q.seq))
            .map(|(i, _)| i)
            .expect("tenant has a queued job")
    }

    /// A job's cost in deficit units: its window count, floored at 1 so
    /// even an opaque (hint-less) stream drains some budget.
    fn cost(job: &QueuedJob<'_>) -> u64 {
        (job.windows as u64).max(1)
    }
}

impl SchedPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }

    fn select(&mut self, _now: u64, queue: &[QueuedJob<'_>]) -> usize {
        let tenants: BTreeSet<TenantId> = queue.iter().map(|q| q.tenant).collect();
        // Idle tenants lose their credit: deficits only persist while a
        // tenant has work queued.
        self.deficits.retain(|t, _| tenants.contains(t));
        // A tenant mid-burst keeps the cursor while its deficit covers
        // its next head job — no new quantum.
        if let Some(current) = self.current.filter(|t| tenants.contains(t)) {
            let head = Self::head(queue, current);
            let cost = Self::cost(&queue[head]);
            let deficit = self.deficits.entry(current).or_insert(0);
            if *deficit >= cost {
                *deficit -= cost;
                return head;
            }
        }
        // Round-robin over the active tenants (deterministic BTreeSet
        // order), starting after the cursor, adding quantum × weight per
        // visit until some tenant affords its head job.  Deficits grow
        // every round, so this terminates.
        let order: Vec<TenantId> = tenants
            .iter()
            .filter(|&&t| Some(t) > self.current)
            .chain(tenants.iter().filter(|&&t| Some(t) <= self.current))
            .copied()
            .collect();
        loop {
            for &tenant in &order {
                let grant = self.quantum * self.weight(tenant);
                let head = Self::head(queue, tenant);
                let cost = Self::cost(&queue[head]);
                let deficit = self.deficits.entry(tenant).or_insert(0);
                *deficit += grant;
                if *deficit >= cost {
                    *deficit -= cost;
                    self.current = Some(tenant);
                    return head;
                }
            }
        }
    }
}

/// One admitted-but-not-yet-started job inside the serve loop.
struct Ticket<'k, K, I> {
    seq: usize,
    kernel: &'k K,
    windows: I,
    key: String,
    config_words: usize,
    /// Capability classes of the job
    /// ([`crate::backend::Offload::classes`]).
    classes: u32,
    /// Per-backend cycles-and-joules pricing, computed once at admission.
    /// A `None` reload marks a backend that cannot serve this job;
    /// dispatch and stealing never commit the job there.
    prices: Vec<BackendPrice>,
    windows_hint: usize,
    tenant: TenantId,
    arrival: u64,
    priority: u8,
    deadline: Option<u64>,
}

impl<K, I> Ticket<'_, K, I> {
    /// `true` if backend `index` can serve this job at all.
    fn eligible(&self, index: usize) -> bool {
        self.prices[index].eligible()
    }
}

/// Default for how many dispatched jobs a backend may hold while still
/// busy ([`Server::with_depth`] overrides it).  Jobs in this run queue are
/// *committed but not started* — stealable until the backend actually
/// materialises them.  Depth 1 would leave backends idle between jobs;
/// unbounded depth would commit placement far into an unknown future and
/// leave the stealing pass nothing early to fix.
const DISPATCH_DEPTH: usize = 2;

/// An online serving layer over a [`Pool`]: admits an arrival-stamped
/// [`ServeJob`] stream, dispatches by a pluggable [`SchedPolicy`],
/// re-balances queued jobs by work stealing, and reports per-job latency
/// percentiles.
///
/// See the [module docs](crate::serve) for the serving model and a
/// runnable example.
#[derive(Debug)]
pub struct Server {
    pool: Pool,
    policy: Box<dyn SchedPolicy>,
    stealing: bool,
    /// Per-backend run-queue depth (committed-but-unstarted jobs).  A
    /// deeper queue gives the placement strategy room to express a
    /// preference (e.g. queueing behind a busy engine because it is
    /// cheaper in joules) where a shallow queue forces the objective-blind
    /// least-projected fallback the moment a backend fills.
    depth: usize,
    /// Whether the whole-queue lookahead planner is active (see
    /// [`Server::with_lookahead`]).
    lookahead: bool,
    /// Online per-program cost model: cumulative `(compute_cycles,
    /// windows)` keyed by *backend kind and* cache key, learned from
    /// every completed job.  The kind in the key keeps the substrates'
    /// very different per-window costs from polluting each other's means
    /// (a CGRA window and an FFT-engine window of the same program differ
    /// by orders of magnitude).  Backs the projected backlogs that
    /// placement and stealing reason over.
    estimates: HashMap<(BackendKind, String), (u64, u64)>,
}

impl Server {
    /// Wraps `pool` with [`Fifo`] dispatch and work stealing enabled.
    pub fn new(pool: Pool) -> Self {
        Self {
            pool,
            policy: Box::new(Fifo),
            stealing: true,
            depth: DISPATCH_DEPTH,
            lookahead: false,
            estimates: HashMap::new(),
        }
    }

    /// Replaces the scheduling policy, builder-style.
    #[must_use]
    pub fn with_policy(mut self, policy: impl SchedPolicy + 'static) -> Self {
        self.set_policy(policy);
        self
    }

    /// Replaces the scheduling policy (queued state such as deficit
    /// counters starts fresh; the pool's residency is unaffected).
    pub fn set_policy(&mut self, policy: impl SchedPolicy + 'static) {
        self.policy = Box::new(policy);
    }

    /// Name of the active scheduling policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Enables or disables the work-stealing pass, builder-style.
    #[must_use]
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// `true` if the work-stealing pass is enabled.
    pub fn stealing(&self) -> bool {
        self.stealing
    }

    /// Sets the per-backend run-queue depth, builder-style (default 2).
    /// Depth 0 is clamped to 1 — a backend that can hold no job at all
    /// could never make progress.
    #[must_use]
    pub fn with_depth(mut self, depth: usize) -> Self {
        self.depth = depth.max(1);
        self
    }

    /// The per-backend run-queue depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Enables or disables the whole-queue **lookahead planner**,
    /// builder-style (default off, preserving the head-job-only dispatch
    /// of earlier revisions).
    ///
    /// With lookahead on, every scheduling round plans over the *whole*
    /// admitted queue instead of only the policy-selected head job:
    ///
    /// 1. **Affinity batching** — queued jobs sharing the head job's cache
    ///    key ride along onto the same backend, back to back, while its
    ///    run queue has room: one reload (if any) amortises over the whole
    ///    run.
    /// 2. **Pipelined prefetch** — the programs of jobs *waiting* in an
    ///    array's run queue are staged on the configuration-load lane
    ///    while the jobs ahead of them compute, so their reloads leave the
    ///    launch critical path (see [`crate::Session::prefetch`]).
    /// 3. **Eviction co-planning** — the cache keys of every queued job
    ///    are announced to the fleet's array sessions as *needed soon*
    ///    ([`crate::Session::set_needed_soon`]), so a prefetch or cold
    ///    load never victimises a program a queued job is about to use
    ///    while any other resident can make room.
    ///
    /// Like scheduling policies, placement, prefetch and stealing, the
    /// planner moves only *where and when* jobs run — served outputs stay
    /// bit-identical to [`Pool::run_serial_reference`].  The planner's
    /// ledger is reported in [`ServeReport::plan`].
    #[must_use]
    pub fn with_lookahead(mut self, lookahead: bool) -> Self {
        self.lookahead = lookahead;
        self
    }

    /// `true` if the whole-queue lookahead planner is active.
    pub fn lookahead(&self) -> bool {
        self.lookahead
    }

    /// The wrapped pool (residency inspection, accumulated stats).
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Mutable access to the wrapped pool (e.g. to swap the placement
    /// strategy between serving runs).
    pub fn pool_mut(&mut self) -> &mut Pool {
        &mut self.pool
    }

    /// Unwraps the server, returning the pool with all residency and
    /// accumulated statistics intact.
    pub fn into_pool(self) -> Pool {
        self.pool
    }

    /// Serves a batch of arrival-stamped jobs and collects each job's
    /// outputs, in window order, grouped by job in submission order.
    ///
    /// Outputs are bit-identical to running the jobs serially in
    /// submission order ([`Pool::run_serial_reference`]) — for every
    /// policy, with or without stealing.
    ///
    /// # Errors
    ///
    /// As [`Server::run_stream`].
    #[allow(clippy::type_complexity)]
    pub fn run_batch<'k, K, J, W>(&mut self, jobs: J) -> Result<(Vec<Vec<K::Output>>, ServeReport)>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = ServeJob<&'k K, W>>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
    {
        let jobs: Vec<ServeJob<&K, W>> = jobs.into_iter().collect();
        let mut outputs: Vec<Vec<K::Output>> = (0..jobs.len()).map(|_| Vec::new()).collect();
        let report = self.run_stream(jobs, |job, output| {
            outputs[job].push(output);
            Ok(())
        })?;
        Ok((outputs, report))
    }

    /// Serves a stream of arrival-stamped jobs, handing each output to
    /// `sink` with its job's submission index as soon as it is computed.
    ///
    /// Jobs are admitted at their arrival cycles, dispatched by the
    /// server's [`SchedPolicy`] and placed by the pool's [`Placement`](crate::pool::Placement)
    /// strategy; the stealing pass (if enabled) re-routes queued jobs
    /// away from backends whose backlog drifted ahead of the fleet.  The
    /// returned [`ServeReport`] carries the
    /// run's fleet accounting, per-job latencies (in submission order),
    /// and the steal count.
    ///
    /// # Errors
    ///
    /// As [`Pool::run_stream`], plus [`RuntimeError::Sched`] if the
    /// policy returns an out-of-range queue index.  The first error
    /// aborts the run; completed work is still folded into
    /// [`Pool::stats`], and the server stays valid and reusable.
    pub fn run_stream<'k, K, J, W, F>(&mut self, jobs: J, sink: F) -> Result<ServeReport>
    where
        K: Kernel + 'k,
        J: IntoIterator<Item = ServeJob<&'k K, W>>,
        W: IntoIterator,
        W::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let backends = self.pool.arrays();
        let mut pending: VecDeque<Ticket<'k, K, W::IntoIter>> = VecDeque::new();
        for (seq, job) in jobs.into_iter().enumerate() {
            let key = job.kernel.cache_key();
            // Admission prices the job against every backend once; the
            // ticket carries the pricing through dispatch and stealing.
            // A job no backend can serve fails here, before any work.
            let pricing = self.pool.price_job(job.kernel, &key)?;
            let windows = job.windows.into_iter();
            let windows_hint = windows.size_hint().0;
            pending.push_back(Ticket {
                seq,
                kernel: job.kernel,
                windows,
                key,
                config_words: pricing.config_words,
                classes: pricing.classes,
                prices: pricing.per_backend,
                windows_hint,
                tenant: job.tenant,
                arrival: job.arrival_cycle,
                priority: job.priority,
                deadline: job.deadline_cycle,
            });
        }
        // Admission happens in arrival order, stable on ties (submission
        // order), regardless of how the caller interleaved the stream.
        pending
            .make_contiguous()
            .sort_by_key(|t| (t.arrival, t.seq));

        let mut schedules: Vec<StreamSchedule> =
            (0..backends).map(|_| StreamSchedule::new()).collect();
        let mut wave = self.pool.blank_wave();
        let mut latencies: Vec<JobLatency> = Vec::new();
        let mut steals = 0u64;
        let mut plan = PlannerStats::default();

        let averted_before = self.pool.evictions_averted();
        let result = self.serve_loop(
            pending,
            sink,
            &mut wave,
            &mut schedules,
            &mut latencies,
            &mut steals,
            &mut plan,
        );
        if self.lookahead {
            // The queue is drained (or the run aborted): clear the
            // needed-soon announcement so later pool waves see an
            // unshielded fleet, and account what the shield redirected.
            self.pool.set_needed_soon(&HashSet::new());
            plan.evictions_averted = self.pool.evictions_averted() - averted_before;
        }
        for (array, schedule) in wave.arrays.iter_mut().zip(schedules) {
            let timeline = schedule.finish();
            array.report.wall_cycles = timeline.wall_cycles();
            array.report.busy = timeline.occupancy();
        }
        // The run's accounting survives an abort: the sessions did the
        // work, so the fleet statistics must show it.
        self.pool.absorb_stats(&wave);
        latencies.sort_unstable_by_key(|l| l.job);
        result.map(|()| ServeReport {
            fleet: wave,
            latencies,
            steals,
            plan,
        })
    }

    /// The learned per-window mean for `key` on backends of `kind`
    /// (`None` before any job of that key has completed on that kind).
    fn learned_mean(&self, kind: BackendKind, key: &str) -> Option<u64> {
        self.estimates
            .get(&(kind, key.to_string()))
            .and_then(|&(cycles, windows)| cycles.checked_div(windows))
            .map(|mean| mean.max(1))
    }

    /// The learned per-window mean over *every* program seen on backends
    /// of `kind` — the same-substrate cold-start fallback.
    fn kind_mean(&self, kind: BackendKind) -> Option<u64> {
        let (cycles, windows) = self
            .estimates
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .fold((0u64, 0u64), |acc, (_, &(c, w))| (acc.0 + c, acc.1 + w));
        cycles.checked_div(windows).map(|mean| mean.max(1))
    }

    /// Lower bound on an array's per-window cycles for `ticket`'s
    /// program: the best modelled window of a *fixed-function* offload
    /// backend the job is priced on.  Dedicated silicon is never slower
    /// than the reconfigurable array at its own kernel (Sec. 2: ~3 k
    /// engine cycles vs 5–7 k array cycles for the 256-pt FFT), so a cold
    /// array estimate below the accelerator's modelled window is certainly
    /// wrong.  The CPU's modelled window is *not* a bound — beating the
    /// CPU is the array's whole point.
    fn accel_floor<K: Kernel, I>(&self, ticket: &Ticket<'_, K, I>) -> u64 {
        ticket
            .prices
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.pool.backend(i).kind() == BackendKind::FftAccel)
            .filter_map(|(_, price)| price.window_cycles)
            .min()
            .unwrap_or(0)
    }

    /// Estimated compute cycles of one window of `ticket`'s program *on
    /// backend `backend`*: the backend's own modelled per-window cost
    /// first (offload backends priced at admission — the same model
    /// placement ranked the backend by, so projections stay consistent
    /// with the dispatch decision), else the key's learned mean on that
    /// backend's kind, else the kind-wide learned mean, else — for
    /// arrays only — the program's reload footprint as a cold-start
    /// proxy.  Consulting the model first is what keeps a cold FFT-heavy
    /// run queue from projecting a near-zero horizon: the engine's
    /// modelled cycles price its queue even before any job has
    /// completed, where the old footprint proxy priced an engine-capable
    /// key (zero config footprint) at 1 cycle per window.  The cold
    /// array fallbacks (kind mean, footprint) are additionally floored
    /// by [`Self::accel_floor`] so a crumb-dominated array mean cannot
    /// underprice an accelerator-class kernel on the array.
    fn per_window_estimate_on<K: Kernel, I>(
        &self,
        ticket: &Ticket<'_, K, I>,
        backend: usize,
    ) -> u64 {
        if let Some(modelled) = ticket.prices[backend].window_cycles {
            return modelled.max(1);
        }
        let kind = self.pool.backend(backend).kind();
        if let Some(mean) = self.learned_mean(kind, &ticket.key) {
            return mean;
        }
        let floor = match kind {
            BackendKind::Array => self.accel_floor(ticket),
            _ => 0,
        };
        if let Some(mean) = self.kind_mean(kind) {
            return mean.max(floor);
        }
        match kind {
            BackendKind::Array => (ticket.config_words as u64).max(1).max(floor),
            _ => 1,
        }
    }

    /// Estimated compute cost of a queued job on the backend it is queued
    /// on (its window hint times the per-window estimate; an opaque
    /// hint-less stream estimates free — the estimator corrects itself
    /// once the job has actually run).
    fn est_cost<K: Kernel, I>(&self, ticket: &Ticket<'_, K, I>, backend: usize) -> u64 {
        ticket.windows_hint as u64 * self.per_window_estimate_on(ticket, backend)
    }

    /// Projected compute horizon of one backend: its schedule's compute
    /// backlog (clamped to `now`) plus the estimated cost of every job
    /// queued on it.
    fn projection<K: Kernel, I>(
        &self,
        backend: usize,
        now: u64,
        schedules: &[StreamSchedule],
        assigned: &[VecDeque<(Ticket<'_, K, I>, u64)>],
    ) -> u64 {
        schedules[backend].free_at(Engine::Compute).max(now)
            + assigned[backend]
                .iter()
                .map(|(t, _)| self.est_cost(t, backend))
                .sum::<u64>()
    }

    /// One backend's [`BackendView`] over the *projected* backlogs — what
    /// placement sees at dispatch and steal time.  Reload and per-window
    /// pricing come from the ticket's admission-time pricing, so the view
    /// carries the same eligibility mask batch fan-outs see.
    fn backend_view<K: Kernel, I>(
        &self,
        backend: usize,
        ticket: &Ticket<'_, K, I>,
        now: u64,
        schedules: &[StreamSchedule],
        assigned: &[VecDeque<(Ticket<'_, K, I>, u64)>],
    ) -> BackendView {
        let b = self.pool.backend(backend);
        BackendView {
            index: backend,
            kind: b.kind(),
            capabilities: b.capabilities(),
            resident: b.is_resident(&ticket.key),
            warm: b.is_warm(&ticket.key),
            free_compute_at: self.projection(backend, now, schedules, assigned),
            free_config_at: schedules[backend].free_at(Engine::ConfigLoad).max(now),
            busy_compute: b.busy_compute(),
            loaded_programs: b.loaded_programs(),
            reload_cycles: ticket.prices[backend].reload_cycles,
            window_cycles: ticket.prices[backend].window_cycles,
            reload_energy_nj: ticket.prices[backend].reload_energy_nj,
            window_energy_nj: ticket.prices[backend].window_energy_nj,
        }
    }

    /// The [`JobView`] a ticket presents to the placement strategy.  The
    /// hints fill the array columns a [`BackendView`] leaves open: the
    /// key's learned array mean (else the array-wide mean, else the
    /// footprint proxy) and that mean priced at the array's average
    /// power.
    fn job_view<'t, K: Kernel, I>(&self, ticket: &'t Ticket<'_, K, I>) -> JobView<'t> {
        let hint = self
            .learned_mean(BackendKind::Array, &ticket.key)
            .unwrap_or_else(|| {
                self.kind_mean(BackendKind::Array)
                    .unwrap_or_else(|| (ticket.config_words as u64).max(1))
                    .max(self.accel_floor(ticket))
            });
        JobView {
            index: ticket.seq,
            cache_key: &ticket.key,
            windows: ticket.windows_hint,
            config_words: ticket.config_words,
            classes: ticket.classes,
            window_cycles_hint: hint,
            window_energy_hint_nj: EnergyModel::calibrated().array_window_nj(hint),
            deadline: ticket.deadline,
        }
    }

    /// The event loop of [`Server::run_stream`]: admits, dispatches,
    /// steals and executes until the stream drains, recording into
    /// `wave`/`schedules`/`latencies` as it goes so the caller can
    /// salvage the accounting of an aborted run.
    #[allow(clippy::too_many_arguments)]
    fn serve_loop<'k, K, I, F>(
        &mut self,
        mut pending: VecDeque<Ticket<'k, K, I>>,
        mut sink: F,
        wave: &mut FleetReport,
        schedules: &mut [StreamSchedule],
        latencies: &mut Vec<JobLatency>,
        steals: &mut u64,
        planner: &mut PlannerStats,
    ) -> Result<()>
    where
        K: Kernel,
        I: Iterator,
        I::Item: Borrow<K::Input>,
        F: FnMut(usize, K::Output) -> Result<()>,
    {
        let backends = self.pool.arrays();
        let mut queue: Vec<Ticket<'k, K, I>> = Vec::new();
        let mut assigned: Vec<VecDeque<(Ticket<'k, K, I>, u64)>> =
            (0..backends).map(|_| VecDeque::new()).collect();
        let mut now = 0u64;

        loop {
            // Admit every job that has arrived by `now`.
            while pending.front().is_some_and(|t| t.arrival <= now) {
                queue.push(pending.pop_front().unwrap());
            }

            // Whether this iteration committed or materialised any job —
            // the guard against re-dispatching in place at the same cycle
            // forever when the only backends with queue room cannot serve
            // the jobs that are waiting.
            let mut progressed = false;

            // Dispatch: while the queue has jobs and some backend has
            // room, the policy picks the job and placement picks the
            // backend.  A job whose every *eligible* backend is depth-full
            // parks for this pass (room elsewhere is no use to it), so the
            // loop strictly consumes the queue and terminates.
            let mut parked: Vec<Ticket<'k, K, I>> = Vec::new();
            while !queue.is_empty() && assigned.iter().any(|a| a.len() < self.depth) {
                let views: Vec<QueuedJob<'_>> = queue
                    .iter()
                    .map(|t| QueuedJob {
                        seq: t.seq,
                        tenant: t.tenant,
                        arrival_cycle: t.arrival,
                        priority: t.priority,
                        deadline_cycle: t.deadline,
                        windows: t.windows_hint,
                        cache_key: &t.key,
                    })
                    .collect();
                let index = self.policy.select(now, &views);
                if index >= queue.len() {
                    return Err(RuntimeError::Sched {
                        index,
                        queued: queue.len(),
                    });
                }
                let ticket = queue.remove(index);
                let plan = {
                    let views: Vec<BackendView> = (0..backends)
                        .map(|i| self.backend_view(i, &ticket, now, schedules, &assigned))
                        .collect();
                    let job = self.job_view(&ticket);
                    self.pool.strategy().place(&job, &views)
                };
                let preferred = plan.backend;
                if preferred >= backends {
                    return Err(RuntimeError::Placement {
                        index: preferred,
                        arrays: backends,
                    });
                }
                let chosen = if ticket.eligible(preferred) && assigned[preferred].len() < self.depth
                {
                    preferred
                } else {
                    // The preferred backend's run queue is full (or the
                    // strategy pointed at a backend that cannot serve the
                    // job): fall back to the least-projected *eligible*
                    // backend with room.  The stealing pass can still
                    // re-route the job before it starts.
                    match (0..backends)
                        .filter(|&i| ticket.eligible(i) && assigned[i].len() < self.depth)
                        .min_by_key(|&i| (self.projection(i, now, schedules, &assigned), i))
                    {
                        Some(i) => i,
                        None => {
                            // Every backend this job can run on is full.
                            parked.push(ticket);
                            continue;
                        }
                    }
                };
                if let Some(directive) = plan.prefetch {
                    if directive.backend >= backends {
                        return Err(RuntimeError::Placement {
                            index: directive.backend,
                            arrays: backends,
                        });
                    }
                    self.pool.stage_prefetch(
                        directive.backend,
                        ticket.kernel,
                        now,
                        schedules,
                        wave,
                    );
                }
                wave.jobs += 1;
                wave.arrays[chosen].jobs += 1;
                let head_key = ticket.key.clone();
                assigned[chosen].push_back((ticket, now));
                progressed = true;
                // Affinity batching: queued jobs sharing the head job's
                // program ride along onto the same backend, back to back,
                // while its run queue has room — the reload (if any)
                // amortises over the whole run, and deeper riders become
                // warm launches behind the head.  Riders keep their queue
                // order; the head was dispatched on the policy's
                // authority, so fairness is charged where it matters (the
                // policy saw the head; the riders save everyone cycles).
                if self.lookahead {
                    let mut riders = 0u64;
                    while assigned[chosen].len() < self.depth {
                        let Some(next) = queue
                            .iter()
                            .position(|t| t.key == head_key && t.eligible(chosen))
                        else {
                            break;
                        };
                        let rider = queue.remove(next);
                        wave.jobs += 1;
                        wave.arrays[chosen].jobs += 1;
                        assigned[chosen].push_back((rider, now));
                        riders += 1;
                    }
                    if riders > 0 {
                        planner.affinity_runs += 1;
                        planner.batched_jobs += riders;
                    }
                }
            }
            queue.extend(parked);

            // Steal: re-route queued jobs away from the backend whose
            // projected backlog drifted furthest ahead of the fleet.
            if self.stealing {
                self.steal_pass(now, schedules, &mut assigned, wave, steals);
            }

            // Eviction co-planning: announce, per backend, the programs
            // of the jobs committed to *that* backend as needed-soon, so
            // neither a sibling's prefetch nor a cold load victimises a
            // program this backend's run queue is about to use.  The set
            // is per-backend on purpose: a global announce would shield
            // replicas on arrays that will never launch them, redirecting
            // evictions onto programs those arrays actually need (and
            // starving the speculative prefetches below, which refuse to
            // evict shielded residents).  Runs after stealing, against
            // each job's final backend.
            if self.lookahead {
                for (i, run_queue) in assigned.iter().enumerate() {
                    let needed: HashSet<String> =
                        run_queue.iter().map(|(t, _)| t.key.clone()).collect();
                    self.pool.set_needed_soon_on(i, needed);
                }
            }

            // Pipelined prefetch: stage the program of every job *waiting*
            // in an array's run queue on the configuration-load lane,
            // where it overlaps the compute of the jobs ahead of it (and,
            // behind a backlog, costs zero wall cycles — a hidden reload).
            // Runs after stealing so the stage lands on each job's final
            // backend.  Best-effort, like every prefetch: a stage the
            // session cannot satisfy is skipped and the job's own launch
            // pays the reload.
            if self.lookahead {
                for (i, run_queue) in assigned.iter().enumerate() {
                    if self.pool.backend(i).kind() != BackendKind::Array {
                        continue;
                    }
                    for (ticket, _) in run_queue {
                        let (kernel, key) = (ticket.kernel, &ticket.key);
                        if self.pool.backend(i).is_warm(key) {
                            continue;
                        }
                        self.pool.stage_prefetch(i, kernel, now, schedules, wave);
                        if self.pool.backend(i).is_warm(key) {
                            planner.planned_prefetches += 1;
                        }
                    }
                }
            }

            // Execute: materialise the front job of every backend whose
            // compute engine has caught up with the clock.
            for i in 0..backends {
                while !assigned[i].is_empty() && schedules[i].free_at(Engine::Compute) <= now {
                    let (ticket, assign_cycle) = assigned[i].pop_front().unwrap();
                    let kind = self.pool.backend(i).kind();
                    // The route is final only now: stealing may have moved
                    // the ticket since dispatch.
                    wave.routes.push(JobRoute {
                        job: ticket.seq,
                        backend: i,
                        kind,
                        energy_nj: 0,
                    });
                    let mut first_compute: Option<u64> = None;
                    let mut completed = assign_cycle;
                    let mut compute_cycles = 0u64;
                    let mut count = 0u64;
                    for window in ticket.windows {
                        let (output, phases, window_nj) = run_window_on(
                            self.pool.backend_mut(i),
                            ticket.kernel,
                            &ticket.key,
                            window.borrow(),
                            &mut wave.arrays[i].report,
                        )?;
                        // Attribute the window's measured joules to the
                        // job as they land, so even an aborted run's
                        // routes price the work actually done.
                        wave.routes
                            .last_mut()
                            .expect("route pushed above")
                            .energy_nj += window_nj;
                        let spans = schedules[i].push_at(phases, assign_cycle);
                        first_compute.get_or_insert(spans.compute.start);
                        completed = spans.irq.end;
                        compute_cycles += phases.compute;
                        count += 1;
                        sink(ticket.seq, output)?;
                    }
                    // Learn the kernel's observed cost *on this kind of
                    // backend* — offload substrates included, so their
                    // queued jobs project real horizons too.
                    let entry = self.estimates.entry((kind, ticket.key)).or_insert((0, 0));
                    entry.0 += compute_cycles;
                    entry.1 += count;
                    // The host knows the job is done once the last
                    // window's completion interrupt was serviced.
                    let service_start = first_compute.unwrap_or(completed);
                    latencies.push(JobLatency {
                        job: ticket.seq,
                        tenant: ticket.tenant,
                        queue_cycles: service_start - ticket.arrival,
                        service_cycles: completed - service_start,
                        total: completed - ticket.arrival,
                        deadline_met: ticket.deadline.is_none_or(|d| completed <= d),
                    });
                    progressed = true;
                }
            }

            // Re-dispatch at the same cycle if this iteration made
            // progress and left room for still-queued jobs.  The progress
            // guard matters in a heterogeneous fleet: room on a backend
            // the queued jobs cannot run on is not progress, and looping
            // on it would spin forever at the same cycle.
            if progressed && !queue.is_empty() && assigned.iter().any(|a| a.len() < self.depth) {
                continue;
            }
            if pending.is_empty() && queue.is_empty() && assigned.iter().all(VecDeque::is_empty) {
                return Ok(());
            }
            // Advance to the next event: an arrival, or a backend's
            // compute engine catching up with its front job.  Both are
            // strictly ahead of `now` (admission drained arrivals <= now;
            // execution drained backends free at <= now).
            let next_arrival = pending.front().map(|t| t.arrival);
            let next_free = (0..backends)
                .filter(|&i| !assigned[i].is_empty())
                .map(|i| schedules[i].free_at(Engine::Compute))
                .min();
            now = match (next_arrival, next_free) {
                (Some(a), Some(f)) => a.min(f),
                (Some(a), None) => a,
                (None, Some(f)) => f,
                (None, None) => unreachable!("drained stream handled above"),
            };
        }
    }

    /// The work-stealing pass: while the most backlogged backend still
    /// has queued (unstarted) jobs, try to move its *last-committed* job
    /// to a backend that would finish it earlier, re-consulting [`Placement`](crate::pool::Placement)
    /// so prefetch directives fire on the new target.  Every move must
    /// strictly improve the donor/target pair's projected finish, must
    /// respect the job's capability classes (the thief has to be able to
    /// serve it), and the pass is bounded, so it terminates.
    fn steal_pass<'k, K, I>(
        &mut self,
        now: u64,
        schedules: &mut [StreamSchedule],
        assigned: &mut [VecDeque<(Ticket<'k, K, I>, u64)>],
        wave: &mut FleetReport,
        steals: &mut u64,
    ) where
        K: Kernel,
        I: Iterator,
    {
        let backends = assigned.len();
        let mut budget = backends * self.depth;
        while budget > 0 {
            budget -= 1;
            let projections: Vec<u64> = (0..backends)
                .map(|i| self.projection(i, now, schedules, assigned))
                .collect();
            let Some(donor) = (0..backends)
                .filter(|&i| !assigned[i].is_empty())
                .max_by_key(|&i| (projections[i], i))
            else {
                return;
            };
            let (plan, eligible) = {
                let (ticket, _) = assigned[donor].back().expect("donor has a queued job");
                let views: Vec<BackendView> = (0..backends)
                    .filter(|&i| i != donor)
                    .map(|i| self.backend_view(i, ticket, now, schedules, assigned))
                    .collect();
                if views.is_empty() {
                    return; // single-backend pool: nowhere to steal to
                }
                let job = self.job_view(ticket);
                let eligible: Vec<bool> = (0..backends).map(|i| ticket.eligible(i)).collect();
                (self.pool.strategy().place(&job, &views), eligible)
            };
            let target = if plan.backend != donor
                && plan.backend < backends
                && eligible[plan.backend]
                && assigned[plan.backend].len() < self.depth
            {
                plan.backend
            } else {
                // The strategy pointed back at the donor (or out of the
                // masked view, or at a backend the job cannot run on):
                // fall back to the least-projected eligible backend with
                // room.
                match (0..backends)
                    .filter(|&i| i != donor && eligible[i] && assigned[i].len() < self.depth)
                    .min_by_key(|&i| (projections[i], i))
                {
                    Some(t) => t,
                    None => return,
                }
            };
            // Only steal if the move strictly improves the pair: the
            // target (with the job, at the job's cost *on the target*)
            // must still finish before the donor (whose projection
            // includes the job) does today.
            let cost = {
                let (ticket, _) = assigned[donor].back().expect("donor has a queued job");
                self.est_cost(ticket, target)
            };
            if projections[target] + cost >= projections[donor] {
                return;
            }
            let (ticket, _) = assigned[donor].pop_back().expect("donor checked non-empty");
            if let Some(directive) = Self::steal_prefetch_target(&plan, donor, backends, target) {
                self.pool
                    .stage_prefetch(directive, ticket.kernel, now, schedules, wave);
            }
            // The job now counts on the thief backend.
            wave.arrays[donor].jobs -= 1;
            wave.arrays[target].jobs += 1;
            assigned[target].push_back((ticket, now));
            *steals += 1;
        }
    }

    /// Where a stolen job's prefetch directive should fire: the plan's
    /// directive if it names a valid non-donor backend, else the actual
    /// steal target.  [`Pool::stage_prefetch`] itself skips backends with
    /// no configuration memory, so no capability check is needed here.
    fn steal_prefetch_target(
        plan: &PlacementPlan,
        donor: usize,
        backends: usize,
        target: usize,
    ) -> Option<usize> {
        let directive = plan.prefetch?;
        if directive.backend < backends && directive.backend != donor {
            Some(directive.backend)
        } else {
            Some(target)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::testing::BakedScaleKernel;

    fn windows(count: usize, seed: i32) -> Vec<Vec<i32>> {
        (0..count)
            .map(|w| (0..96).map(|i| i + seed + 7 * w as i32).collect())
            .collect()
    }

    fn queued(seq: usize, tenant: TenantId, arrival: u64) -> QueuedJob<'static> {
        QueuedJob {
            seq,
            tenant,
            arrival_cycle: arrival,
            priority: 0,
            deadline_cycle: None,
            windows: 1,
            cache_key: "k",
        }
    }

    #[test]
    fn fifo_selects_the_earliest_arrival() {
        let mut fifo = Fifo;
        let queue = [queued(2, 0, 500), queued(0, 1, 100), queued(1, 0, 100)];
        // Earliest arrival wins; ties break on submission order.
        assert_eq!(fifo.select(0, &queue), 1);
        assert_eq!(fifo.name(), "fifo");
    }

    #[test]
    fn edf_orders_by_deadline_priority_then_arrival() {
        let mut edf = EarliestDeadlineFirst;
        let mut queue = vec![queued(0, 0, 0), queued(1, 0, 10), queued(2, 0, 20)];
        queue[0].deadline_cycle = None;
        queue[1].deadline_cycle = Some(9_000);
        queue[2].deadline_cycle = Some(5_000);
        // The tightest deadline wins even though it arrived last...
        assert_eq!(edf.select(0, &queue), 2);
        // ...deadline-less jobs queue behind every deadlined one...
        queue.remove(2);
        assert_eq!(edf.select(0, &queue), 1);
        // ...and among deadline-less jobs, priority then arrival decides.
        queue.remove(1);
        queue.push(queued(3, 0, 99).with_prio(5));
        assert_eq!(edf.select(0, &queue), 1);
    }

    impl QueuedJob<'_> {
        fn with_prio(mut self, priority: u8) -> Self {
            self.priority = priority;
            self
        }
    }

    #[test]
    fn weighted_fair_alternates_equal_tenants() {
        let mut wf = WeightedFair::new();
        let queue = [
            queued(0, 0, 0),
            queued(1, 0, 1),
            queued(2, 1, 2),
            queued(3, 1, 3),
        ];
        // Round-robin across tenants despite tenant 0 arriving first.
        let first = wf.select(0, &queue);
        assert_eq!(queue[first].tenant, 0);
        let rest: Vec<QueuedJob> = queue[1..].to_vec();
        let second = wf.select(0, &rest);
        assert_eq!(rest[second].tenant, 1);
    }

    #[test]
    fn weighted_fair_weights_scale_the_service_share() {
        let mut wf = WeightedFair::new().with_weight(1, 2);
        // Saturated queues for both tenants; replay selections and count.
        let mut queue: Vec<QueuedJob> = (0..12)
            .map(|seq| queued(seq, (seq % 2) as TenantId, seq as u64))
            .collect();
        let mut served = [0u32; 2];
        for _ in 0..6 {
            let index = wf.select(0, &queue);
            served[queue[index].tenant as usize] += 1;
            queue.remove(index);
        }
        // Weight 2 earns (about) twice the dispatches of weight 1.
        assert_eq!(served[1], 4, "weight-2 tenant gets 2/3 of the service");
        assert_eq!(served[0], 2);
    }

    #[test]
    fn weighted_fair_charges_long_jobs_more() {
        let mut wf = WeightedFair::new();
        // Tenant 0's only job is 3 windows long; tenant 1 queues 1-window
        // jobs.  Tenant 0 must accrue 3 rounds of credit before its job
        // dispatches, so tenant 1's short jobs go first — window counts,
        // not job counts, are what the deficit counters charge.
        let mut long = queued(0, 0, 0);
        long.windows = 3;
        let queue = [long, queued(1, 1, 1), queued(2, 1, 2)];
        assert_eq!(queue[wf.select(0, &queue)].seq, 1);
        let queue = [long, queued(2, 1, 2)];
        assert_eq!(queue[wf.select(0, &queue)].seq, 2);
        let queue = [long];
        assert_eq!(queue[wf.select(0, &queue)].seq, 0);
    }

    #[test]
    fn served_outputs_match_the_serial_reference_for_every_policy() {
        let kernels: Vec<BakedScaleKernel> = [2i16, 3, 5]
            .iter()
            .map(|&f| BakedScaleKernel::new(f))
            .collect();
        let picks = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = picks
            .iter()
            .enumerate()
            .map(|(j, &p)| (&kernels[p], windows(2, j as i32)))
            .collect();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();

        let policies: Vec<Box<dyn SchedPolicy>> = vec![
            Box::new(Fifo),
            Box::new(EarliestDeadlineFirst),
            Box::new(WeightedFair::new()),
        ];
        for policy in policies {
            for stealing in [false, true] {
                let name = policy.name();
                let mut server = Server::new(Pool::new(2)).with_stealing(stealing);
                server.policy = dyn_clone(&*policy);
                let (outputs, report) = server
                    .run_batch(jobs.iter().enumerate().map(|(j, (k, ws))| {
                        ServeJob::new(*k, ws.iter().map(Vec::as_slice), (j % 3) as u32, 0)
                            .with_priority((j % 4) as u8)
                    }))
                    .unwrap();
                assert_eq!(
                    outputs, serial,
                    "{name} (stealing={stealing}) must match serial"
                );
                assert_eq!(report.latencies.len(), jobs.len());
                assert_eq!(report.fleet.jobs, jobs.len() as u64);
            }
        }
    }

    /// Fresh boxed instance of one of the three built-in policies (the
    /// trait is deliberately not `Clone`; tests only need the built-ins).
    fn dyn_clone(policy: &dyn SchedPolicy) -> Box<dyn SchedPolicy> {
        match policy.name() {
            "fifo" => Box::new(Fifo),
            "edf" => Box::new(EarliestDeadlineFirst),
            "weighted-fair" => Box::new(WeightedFair::new()),
            other => unreachable!("unknown built-in policy {other}"),
        }
    }

    #[test]
    fn lookahead_batches_affinity_runs_at_identical_outputs() {
        // Six jobs over two kernels arrive together on two arrays.  With
        // lookahead on, queued jobs sharing a cache key ride the head
        // job's dispatch as affinity runs; outputs stay bit-identical to
        // the serial reference and the lookahead-off server, and the
        // planner's counters surface in the report (all zero when off).
        let k2 = BakedScaleKernel::new(2);
        let k3 = BakedScaleKernel::new(3);
        let picks = [&k2, &k2, &k2, &k3, &k3, &k3];
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = picks
            .iter()
            .enumerate()
            .map(|(j, k)| (*k, windows(2, j as i32)))
            .collect();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();

        let run = |lookahead: bool| {
            let mut server = Server::new(Pool::new(2))
                .with_depth(3)
                .with_lookahead(lookahead);
            server
                .run_batch(
                    jobs.iter()
                        .map(|(k, ws)| ServeJob::new(*k, ws.iter().map(Vec::as_slice), 0, 0)),
                )
                .unwrap()
        };
        let (plain_outputs, plain) = run(false);
        let (planned_outputs, planned) = run(true);
        assert_eq!(plain_outputs, serial);
        assert_eq!(planned_outputs, serial, "planning moved an output");
        assert_eq!(plain.plan, PlannerStats::default(), "off means all zeros");
        assert!(
            planned.plan.affinity_runs >= 1,
            "same-key jobs must batch: {:?}",
            planned.plan
        );
        assert!(planned.plan.batched_jobs >= planned.plan.affinity_runs);
    }

    #[test]
    fn lookahead_prefetches_queued_programs_behind_the_running_job() {
        // One array, two distinct kernels arriving together, under a
        // placement strategy that issues no prefetch directives of its
        // own (round-robin): while job 0 computes, the *planner* stages
        // job 1's program on the idle configuration-load lane, so its
        // would-be cold reload is paid off the critical path.
        use crate::pool::RoundRobin;
        let k2 = BakedScaleKernel::new(2);
        let k3 = BakedScaleKernel::new(3);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> = [&k2, &k3]
            .iter()
            .enumerate()
            .map(|(j, &k)| (k, windows(3, j as i32)))
            .collect();
        let run = |lookahead: bool| {
            let mut server =
                Server::new(Pool::new(1).with_placement(RoundRobin)).with_lookahead(lookahead);
            server
                .run_batch(
                    jobs.iter()
                        .map(|(k, ws)| ServeJob::new(*k, ws.iter().map(Vec::as_slice), 0, 0)),
                )
                .unwrap()
        };
        let (plain_outputs, plain) = run(false);
        let (planned_outputs, planned) = run(true);
        assert_eq!(plain_outputs, planned_outputs, "planning moved an output");
        assert!(
            planned.plan.planned_prefetches >= 1,
            "the queued program must be staged: {:?}",
            planned.plan
        );
        assert!(planned.fleet.prefetched() > plain.fleet.prefetched());
        assert!(planned.fleet.hidden_reloads() >= plain.fleet.hidden_reloads());
    }

    #[test]
    fn edf_urgent_jobs_jump_the_queue() {
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(1, 0);
        let mut server = Server::new(Pool::new(1)).with_policy(EarliestDeadlineFirst);
        let mut order: Vec<usize> = Vec::new();
        // Three jobs arrive together; the tightest deadline (job 2) must
        // start first, the deadline-less job (0) last.
        server
            .run_stream(
                [
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0),
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0)
                        .with_deadline(90_000),
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0)
                        .with_deadline(50_000),
                ],
                |job, _| {
                    order.push(job);
                    Ok(())
                },
            )
            .unwrap();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn weighted_fair_protects_a_quiet_tenant_from_a_chatty_one() {
        let kernel = BakedScaleKernel::new(3);
        let ws = windows(1, 0);
        let latency_of = |policy: Box<dyn SchedPolicy>| {
            let mut server = Server::new(Pool::new(1));
            server.policy = policy;
            // Tenant 0 floods 6 jobs at cycle 0; tenant 1 submits 2.
            let (_, report) = server
                .run_batch((0..8).map(|j| {
                    let tenant = if j < 6 { 0 } else { 1 };
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), tenant, 0)
                }))
                .unwrap();
            let tenants = report.tenants();
            assert_eq!(tenants.len(), 2);
            (tenants[0].total_cycles, tenants[1].total_cycles)
        };
        let (_, quiet_fifo) = latency_of(Box::new(Fifo));
        let (_, quiet_fair) = latency_of(Box::new(WeightedFair::new()));
        assert!(
            quiet_fair < quiet_fifo,
            "the quiet tenant must wait less under weighted-fair \
             ({quiet_fair} vs {quiet_fifo} total cycles)"
        );
    }

    #[test]
    fn deadline_misses_are_accounted_per_job() {
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(1, 0);
        let mut server = Server::new(Pool::new(1));
        let (_, report) = server
            .run_batch([
                // Impossible deadline: 1 cycle after arrival.
                ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0).with_deadline(1),
                // Generous deadline: met.
                ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0).with_deadline(1_000_000),
                // No deadline: vacuously met.
                ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 1, 0),
            ])
            .unwrap();
        assert_eq!(report.deadline_misses(), 1);
        assert!(!report.latencies[0].deadline_met);
        assert!(report.latencies[1].deadline_met);
        assert!(report.latencies[2].deadline_met);
        let tenants = report.tenants();
        assert_eq!(tenants[0].deadline_misses, 1);
        assert_eq!(tenants[1].deadline_misses, 0);
    }

    #[test]
    fn latency_decomposition_is_consistent() {
        let kernel = BakedScaleKernel::new(5);
        let ws = windows(3, 0);
        let mut server = Server::new(Pool::new(2));
        let (_, report) = server
            .run_batch((0..5u64).map(|j| {
                ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), j as u32 % 2, j * 800)
            }))
            .unwrap();
        assert_eq!(report.latencies.len(), 5);
        for (j, latency) in report.latencies.iter().enumerate() {
            assert_eq!(latency.job, j, "latencies come back in submission order");
            assert_eq!(latency.total, latency.queue_cycles + latency.service_cycles);
            assert!(latency.service_cycles > 0, "3 windows actually computed");
        }
        assert_eq!(
            report.tenants().iter().map(|t| t.jobs).sum::<u64>(),
            5,
            "every job belongs to exactly one tenant"
        );
        assert_eq!(report.fleet.invocations(), 15);
        // Percentiles are monotone and drawn from actual latencies.
        assert!(report.p50() <= report.p95());
        assert!(report.p95() <= report.p99());
        assert!(report.latencies.iter().any(|l| l.total == report.p99()));
    }

    #[test]
    fn arrival_gaps_surface_as_idle_time_not_backdated_work() {
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(1, 0);
        let mut server = Server::new(Pool::new(1));
        let (_, report) = server
            .run_batch([ServeJob::new(
                &kernel,
                ws.iter().map(Vec::as_slice),
                0,
                10_000,
            )])
            .unwrap();
        // The job could not run before it arrived: the fleet wall clock
        // covers the idle gap, but the job's own latency does not.
        assert!(report.fleet.wall_cycles() >= 10_000);
        assert!(report.latencies[0].total < 10_000);
    }

    #[test]
    fn stealing_rebalances_a_drifted_backlog() {
        // One heavy job (8 windows) and a train of light ones, all
        // arriving at once on a 2-array fleet: the estimator knows
        // nothing yet, so dispatch piles jobs behind the heavy one; once
        // it materialises, the drift is visible and the stealing pass
        // re-routes the queued job to the other array.
        let heavy = BakedScaleKernel::new(2);
        let light = BakedScaleKernel::new(3);
        let heavy_ws = windows(8, 0);
        let light_ws = windows(1, 1);
        let jobs = |server: &mut Server| {
            let mut order = Vec::new();
            let report = server
                .run_stream(
                    (0..6).map(|j| {
                        if j == 0 {
                            ServeJob::new(&heavy, heavy_ws.iter().map(Vec::as_slice), 0, 0)
                        } else {
                            ServeJob::new(&light, light_ws.iter().map(Vec::as_slice), 1, 0)
                        }
                    }),
                    |job, _| {
                        order.push(job);
                        Ok(())
                    },
                )
                .unwrap();
            (report, order)
        };
        let (stolen, _) = jobs(&mut Server::new(Pool::new(2)));
        assert!(stolen.steals > 0, "the drifted backlog must be rebalanced");
        let (kept, _) = jobs(&mut Server::new(Pool::new(2)).with_stealing(false));
        assert_eq!(kept.steals, 0);
        // Stealing strictly helps the tail here: the queued light jobs
        // escape the heavy job's backlog.
        assert!(
            stolen.p99() <= kept.p99(),
            "stealing p99 {} must not exceed no-steal p99 {}",
            stolen.p99(),
            kept.p99()
        );
        // And the re-routing never changes results: both match serial.
        let reference_jobs: Vec<(&BakedScaleKernel, &Vec<Vec<i32>>)> = (0..6)
            .map(|j| {
                if j == 0 {
                    (&heavy, &heavy_ws)
                } else {
                    (&light, &light_ws)
                }
            })
            .collect();
        let (serial, _) = Pool::run_serial_reference(
            reference_jobs
                .iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        let (outputs, _) = Server::new(Pool::new(2))
            .run_batch((0..6).map(|j| {
                if j == 0 {
                    ServeJob::new(&heavy, heavy_ws.iter().map(Vec::as_slice), 0, 0)
                } else {
                    ServeJob::new(&light, light_ws.iter().map(Vec::as_slice), 1, 0)
                }
            }))
            .unwrap();
        assert_eq!(outputs, serial);
    }

    #[test]
    fn rogue_policy_fails_cleanly() {
        #[derive(Debug)]
        struct OutOfRange;
        impl SchedPolicy for OutOfRange {
            fn name(&self) -> &'static str {
                "out-of-range"
            }
            fn select(&mut self, _now: u64, queue: &[QueuedJob<'_>]) -> usize {
                queue.len() + 5
            }
        }
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(1, 0);
        let mut server = Server::new(Pool::new(2)).with_policy(OutOfRange);
        assert_eq!(server.policy_name(), "out-of-range");
        let err = server
            .run_batch([ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0)])
            .unwrap_err();
        assert!(
            matches!(
                err,
                RuntimeError::Sched {
                    index: 6,
                    queued: 1
                }
            ),
            "expected Sched, got {err:?}"
        );
        // The server recovers with a sane policy.
        server.set_policy(Fifo);
        server
            .run_batch([ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, 0)])
            .unwrap();
    }

    #[test]
    fn empty_streams_serve_nothing() {
        let mut server = Server::new(Pool::new(2));
        let (outputs, report) = server
            .run_batch(std::iter::empty::<ServeJob<&BakedScaleKernel, Vec<&[i32]>>>())
            .unwrap();
        assert!(outputs.is_empty());
        assert!(report.latencies.is_empty());
        assert_eq!(report.steals, 0);
        assert_eq!(report.p99(), 0);
        assert_eq!(report.fleet.wall_cycles(), 0);
    }

    #[test]
    fn serving_never_routes_cgra_only_jobs_onto_offload_backends() {
        use crate::backend::{BackendKind, FftBackend};

        // 2 arrays + the FFT engine; plain BakedScale jobs are CGRA-only,
        // so the FFT backend must stay untouched no matter how saturated
        // the arrays get — dispatch, fallback and stealing all filter by
        // the job's capability classes.
        let kernel = BakedScaleKernel::new(3);
        let ws = windows(2, 0);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> =
            (0..6).map(|_| (&kernel, ws.clone())).collect();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        let pool = Pool::new(2).with_backend(FftBackend::new());
        let mut server = Server::new(pool);
        let (outputs, report) = server
            .run_batch(
                jobs.iter()
                    .map(|(k, ws)| ServeJob::new(*k, ws.iter().map(Vec::as_slice), 0, 0)),
            )
            .unwrap();
        assert_eq!(outputs, serial);
        assert_eq!(report.fleet.routes.len(), 6);
        assert!(
            report
                .fleet
                .routes
                .iter()
                .all(|r| r.backend < 2 && r.kind == BackendKind::Array),
            "CGRA-only jobs must stay on the arrays: {:?}",
            report.fleet.routes
        );
        assert_eq!(report.fleet.arrays[2].jobs, 0);
        assert_eq!(report.fleet.arrays[2].report.invocations, 0);
    }

    #[test]
    fn serving_offloads_tiny_jobs_to_the_cpu_bit_identically() {
        use crate::backend::{BackendKind, CpuBackend};

        // A 1-window crumb advertising a 2-cycle CPU implementation: the
        // cost-aware strategy must send it to the host CPU rather than pay
        // a cold array reload, and the outputs must still match the serial
        // single-session reference.
        let kernel = BakedScaleKernel::new(4).with_cpu_offload(2);
        let ws = windows(1, 3);
        let jobs: Vec<(&BakedScaleKernel, Vec<Vec<i32>>)> =
            (0..3).map(|_| (&kernel, ws.clone())).collect();
        let (serial, _) = Pool::run_serial_reference(
            jobs.iter()
                .map(|(k, ws)| (*k, ws.iter().map(Vec::as_slice))),
        )
        .unwrap();
        let pool = Pool::new(1).with_backend(CpuBackend::new());
        let mut server = Server::new(pool);
        // Arrivals are spaced wider than one ISS run, so each crumb finds
        // the CPU idle again (a busy CPU is a real cost the model must
        // weigh; the point here is the cold-reload-versus-offload call).
        let (outputs, report) = server
            .run_batch(jobs.iter().enumerate().map(|(j, (k, ws))| {
                ServeJob::new(*k, ws.iter().map(Vec::as_slice), 0, j as u64 * 5_000)
            }))
            .unwrap();
        assert_eq!(outputs, serial);
        assert!(
            report
                .fleet
                .routes
                .iter()
                .all(|r| r.kind == BackendKind::Cpu),
            "tiny jobs belong on the CPU: {:?}",
            report.fleet.routes
        );
        let per_kind = report.fleet.per_kind();
        let cpu = per_kind
            .iter()
            .find(|s| s.kind == BackendKind::Cpu)
            .expect("cpu row");
        assert_eq!(cpu.jobs, 3);
        assert_eq!(cpu.invocations, 3);
        assert!(cpu.cycles > 0, "the ISS actually ran");
        // Nothing touched the array's configuration memory.
        assert_eq!(report.fleet.arrays[0].report.cold_launches, 0);
    }

    #[test]
    fn the_server_accumulates_into_the_pool_stats() {
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(2, 0);
        let mut server = Server::new(Pool::new(2));
        server
            .run_batch(
                (0..3).map(|j| {
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, j as u64 * 100)
                }),
            )
            .unwrap();
        let pool = server.into_pool();
        assert_eq!(pool.stats().jobs, 3);
        assert_eq!(pool.stats().invocations(), 6);
    }

    /// A ticket with explicit admission prices, as the estimator tests
    /// need — never materialised, so the empty windows iterator is fine.
    fn priced_ticket<'k>(
        kernel: &'k BakedScaleKernel,
        key: &str,
        config_words: usize,
        windows_hint: usize,
        prices: Vec<BackendPrice>,
    ) -> Ticket<'k, BakedScaleKernel, std::iter::Empty<Vec<i32>>> {
        Ticket {
            seq: 0,
            kernel,
            windows: std::iter::empty(),
            key: key.to_string(),
            config_words,
            classes: 0,
            prices,
            windows_hint,
            tenant: 0,
            arrival: 0,
            priority: 0,
            deadline: None,
        }
    }

    #[test]
    fn cold_fft_queue_projects_the_engines_modelled_horizon() {
        // Regression: an engine-capable key has a zero config-word
        // footprint, and the old cold-start fallback (footprint proxy for
        // every backend) priced its windows at 1 cycle each — a queued
        // FFT job projected a near-zero horizon, starving the stealing
        // pass of drift it should have seen.  The fix consults the placed
        // backend's modelled per-window cycles first.
        let server = Server::new(
            Pool::with_sessions(vec![Session::new()])
                .unwrap()
                .with_backend(crate::backend::FftBackend::new()),
        );
        let kernel = BakedScaleKernel::new(2);
        let modelled = 3_523;
        let ticket = priced_ticket(
            &kernel,
            "fft-512",
            0, // engine-capable: no config footprint
            4,
            vec![
                BackendPrice::INELIGIBLE,
                BackendPrice {
                    reload_cycles: Some(0),
                    window_cycles: Some(modelled),
                    reload_energy_nj: Some(0),
                    window_energy_nj: Some(43_000),
                },
            ],
        );
        // Cold server: no learned estimates anywhere.
        assert_eq!(server.per_window_estimate_on(&ticket, 1), modelled);
        assert_eq!(server.est_cost(&ticket, 1), 4 * modelled);
        assert!(
            server.est_cost(&ticket, 1) > 1_000,
            "a cold FFT-heavy queue no longer projects a near-zero horizon"
        );
    }

    #[test]
    fn cold_array_keys_keep_the_footprint_proxy() {
        let server = Server::new(Pool::new(1));
        let kernel = BakedScaleKernel::new(2);
        let ticket = priced_ticket(
            &kernel,
            "arrayish",
            57,
            2,
            vec![BackendPrice {
                reload_cycles: Some(57),
                window_cycles: None,
                reload_energy_nj: Some(100),
                window_energy_nj: None,
            }],
        );
        assert_eq!(server.per_window_estimate_on(&ticket, 0), 57);
    }

    #[test]
    fn estimator_means_stay_separated_by_backend_kind() {
        // Regression: the global-mean fallback used to pool observed
        // cycles across every key regardless of which substrate they ran
        // on, so one engine job (thousands of cycles per window) would
        // poison the projection of every light array crumb, and vice
        // versa.  Means are now tracked and pooled per backend kind.
        let mut server = Server::new(
            Pool::with_sessions(vec![Session::new()])
                .unwrap()
                .with_backend(crate::backend::FftBackend::new()),
        );
        server
            .estimates
            .insert((BackendKind::Array, "k".to_string()), (10_000, 10));
        server
            .estimates
            .insert((BackendKind::FftAccel, "k".to_string()), (70_000, 20));
        assert_eq!(server.learned_mean(BackendKind::Array, "k"), Some(1_000));
        assert_eq!(server.learned_mean(BackendKind::FftAccel, "k"), Some(3_500));
        assert_eq!(server.learned_mean(BackendKind::Cpu, "k"), None);

        // The kind-wide fallback pools same-kind entries only.
        server
            .estimates
            .insert((BackendKind::Array, "other".to_string()), (2_000, 10));
        assert_eq!(server.kind_mean(BackendKind::Array), Some(600));
        assert_eq!(server.kind_mean(BackendKind::FftAccel), Some(3_500));
        assert_eq!(server.kind_mean(BackendKind::Cpu), None);

        // An unseen key on the array prices at the array mean, untouched
        // by the engine's much heavier observations.
        let kernel = BakedScaleKernel::new(2);
        let ticket = priced_ticket(
            &kernel,
            "fresh",
            40,
            1,
            vec![
                BackendPrice {
                    reload_cycles: Some(40),
                    window_cycles: None,
                    reload_energy_nj: Some(80),
                    window_energy_nj: None,
                },
                BackendPrice::INELIGIBLE,
            ],
        );
        assert_eq!(server.per_window_estimate_on(&ticket, 0), 600);
    }

    #[test]
    fn accelerator_model_floors_cold_array_estimates() {
        // An accelerator-capable key's cold array fallbacks (kind-wide
        // mean, footprint proxy) can be dominated by light crumb
        // programs; the dedicated engine's modelled window is a lower
        // bound for the array running the same kernel, so cold array
        // estimates are floored by it.
        let mut server = Server::new(
            Pool::with_sessions(vec![Session::new()])
                .unwrap()
                .with_backend(crate::backend::FftBackend::new()),
        );
        let kernel = BakedScaleKernel::new(2);
        let modelled = 3_523;
        let prices = vec![
            BackendPrice {
                reload_cycles: Some(800),
                window_cycles: None,
                reload_energy_nj: Some(1_000),
                window_energy_nj: None,
            },
            BackendPrice {
                reload_cycles: Some(0),
                window_cycles: Some(modelled),
                reload_energy_nj: Some(0),
                window_energy_nj: Some(43_000),
            },
        ];
        let ticket = priced_ticket(&kernel, "fft-256", 800, 1, prices);
        // Cold server: the footprint proxy (800) would underprice the
        // array — the engine's modelled window floors it.
        assert_eq!(server.per_window_estimate_on(&ticket, 0), modelled);
        // A crumb-dominated array-wide mean is floored the same way.
        server
            .estimates
            .insert((BackendKind::Array, "crumb".to_string()), (3_000, 10));
        assert_eq!(server.per_window_estimate_on(&ticket, 0), modelled);
        // A learned mean for the key itself is a measurement: trusted
        // as-is, even above the floor.
        server
            .estimates
            .insert((BackendKind::Array, "fft-256".to_string()), (40_000, 10));
        assert_eq!(server.per_window_estimate_on(&ticket, 0), 4_000);
    }

    #[test]
    fn run_queue_depth_moves_scheduling_never_outputs() {
        let kernel = BakedScaleKernel::new(3);
        let ws = windows(2, 0);
        let (serial, _) =
            Pool::run_serial_reference((0..4).map(|_| (&kernel, ws.iter().map(Vec::as_slice))))
                .unwrap();
        for depth in [1, 2, 6] {
            let mut server = Server::new(Pool::new(2)).with_depth(depth);
            assert_eq!(server.depth(), depth);
            let (outputs, _) = server
                .run_batch((0..4).map(|j| {
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, j as u64 * 60)
                }))
                .unwrap();
            assert_eq!(outputs, serial, "depth {depth} changed an output");
        }
        // Depth 0 could never make progress: clamped to 1.
        assert_eq!(Server::new(Pool::new(1)).with_depth(0).depth(), 1);
    }

    #[test]
    fn served_routes_carry_the_jobs_measured_joules() {
        let kernel = BakedScaleKernel::new(2);
        let ws = windows(2, 0);
        let mut server = Server::new(Pool::new(2));
        let (_, report) =
            server
                .run_batch((0..3).map(|j| {
                    ServeJob::new(&kernel, ws.iter().map(Vec::as_slice), 0, j as u64 * 50)
                }))
                .unwrap();
        assert_eq!(report.fleet.routes.len(), 3);
        for route in &report.fleet.routes {
            assert!(route.energy_nj > 0, "every served job priced its windows");
        }
        let routed: u64 = report.fleet.routes.iter().map(|r| r.energy_nj).sum();
        let per_kind = report.fleet.per_kind();
        let attributed: u64 = per_kind
            .iter()
            .map(|k| k.energy_nj - k.prefetch_energy_nj)
            .sum();
        assert_eq!(routed, attributed, "job joules sum exactly to kind totals");
        let display = format!("{report}");
        assert!(display.contains("uJ"), "the serve summary prints joules");
    }
}
