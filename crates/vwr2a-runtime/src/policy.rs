//! Eviction policies for the configuration-memory residency manager.
//!
//! When a [`crate::Session`] must load a program that does not fit the
//! remaining configuration memory, it consults its [`EvictionPolicy`] to
//! pick resident *victims* to unload, one at a time, until the new program
//! fits.  The policy only ever sees evictable candidates — programs pinned
//! by the active invocation are withheld by the session, and programs
//! staged by [`crate::Session::prefetch`] but not yet launched are
//! withheld until no other resident can make room — and must be
//! deterministic so capacity experiments are reproducible.
//!
//! Four policies ship with the runtime:
//!
//! * [`LruPolicy`] (default) — evict the least recently loaded-or-launched
//!   program, regardless of size.
//! * [`LfuPolicy`] — evict the least *frequently* launched program
//!   (recency breaks ties), so a long-lived hot working set survives
//!   one-off interlopers that LRU would keep just for being recent.
//! * [`SizeAwareLru`] — weigh a program's size against its recency, so one
//!   large cold-ish program is evicted instead of several small warm-ish
//!   ones.  A single eviction then frees enough room, and the small hot
//!   programs keep their residency (fewer cold reloads downstream).
//! * [`NeverEvict`] — refuse, restoring the hard
//!   [`vwr2a_core::CoreError::ConfigMemoryFull`] failure.
//!
//! The `residency` bench binary compares the policies on a mixed-size
//! working set.

use std::fmt;

/// Snapshot of one resident program handed to an [`EvictionPolicy`] when
/// the session must free configuration-memory words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentProgram<'a> {
    /// The program's [`crate::Kernel::cache_key`].
    pub key: &'a str,
    /// Configuration words the program occupies.
    pub words: usize,
    /// Launches since the program was (last) loaded.
    pub launches: u64,
    /// Session-wide logical time of the program's last load or launch
    /// (higher = more recent; values are unique within a session).
    pub last_use: u64,
}

/// Chooses which resident program to evict when a new program does not fit
/// the configuration memory.
///
/// The session calls [`EvictionPolicy::select_victim`] only with programs
/// that are *evictable* — programs pinned by the active
/// [`crate::LaunchCtx`] (the invocation's primary program and every
/// auxiliary program it already touched) are never offered.  Returning
/// `None` makes the load fail with
/// [`vwr2a_core::CoreError::ConfigMemoryFull`]; see [`NeverEvict`].
pub trait EvictionPolicy: fmt::Debug + Send {
    /// Returns the cache key of the program to evict, or `None` to refuse.
    ///
    /// Called repeatedly until the pending program fits, so a policy only
    /// ever picks one victim at a time.
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str>;
}

/// The default policy: evict the program least recently loaded or
/// launched.  Deterministic, because the session's logical clock gives
/// every resident program a unique `last_use`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        candidates.iter().min_by_key(|c| c.last_use).map(|c| c.key)
    }
}

/// Frequency-aware eviction: evict the program with the fewest launches
/// since it was (last) loaded, breaking ties toward the least recently
/// used.
///
/// LRU protects whatever ran *last*; LFU protects whatever runs *often*.
/// In a streaming workload where a stable set of hot kernels is
/// occasionally interrupted by one-off programs (a calibration pass, a
/// rare event handler), LRU ranks the interloper above the oldest hot
/// program — and evicts a program that is about to be used again.  LFU
/// sees the interloper's single launch and sacrifices it instead, keeping
/// the hot set resident.  The flip side is the classic LFU weakness: a
/// formerly hot program keeps its launch count after the workload shifts,
/// so stale-but-once-popular programs outlive their usefulness (the
/// recency tie-break only softens this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfuPolicy;

impl EvictionPolicy for LfuPolicy {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        candidates
            .iter()
            .min_by_key(|c| (c.launches, c.last_use))
            .map(|c| c.key)
    }
}

/// A policy that never evicts: a full configuration memory fails with
/// [`vwr2a_core::CoreError::ConfigMemoryFull`], matching the pre-residency
/// behaviour.  Useful for experiments that want capacity misses to be loud.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeverEvict;

impl EvictionPolicy for NeverEvict {
    fn select_victim<'a>(&self, _candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        None
    }
}

/// Size-aware LRU: evicts the program with the highest
/// `words × age-rank` score, where the age rank counts up from the most
/// recently used candidate (1) to the least recently used (N).
///
/// Pure LRU frees room strictly by age: when the incoming program is
/// large, that can mean unloading *several* small programs that were about
/// to be used again.  Weighing size against recency makes the session
/// prefer evicting **one large, coldish program** over a run of small,
/// warmer ones — a single eviction frees enough words and the small hot
/// working set keeps its residency.  Among equally sized candidates the
/// policy degrades to plain LRU (the older program wins on age rank), so
/// uniform working sets behave exactly like [`LruPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeAwareLru;

impl EvictionPolicy for SizeAwareLru {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        // Age rank: most recent gets 1, oldest gets candidates.len().
        let mut by_recency: Vec<&ResidentProgram<'a>> = candidates.iter().collect();
        by_recency.sort_by_key(|c| std::cmp::Reverse(c.last_use));
        by_recency
            .iter()
            .enumerate()
            .max_by_key(|(rank, c)| {
                (
                    c.words as u64 * (*rank as u64 + 1),
                    std::cmp::Reverse(c.last_use),
                )
            })
            .map(|(_, c)| c.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident(key: &str, words: usize, last_use: u64) -> ResidentProgram<'_> {
        ResidentProgram {
            key,
            words,
            launches: 1,
            last_use,
        }
    }

    #[test]
    fn lru_picks_the_oldest() {
        let c = [
            resident("a", 10, 5),
            resident("b", 99, 2),
            resident("c", 1, 9),
        ];
        assert_eq!(LruPolicy.select_victim(&c), Some("b"));
        assert_eq!(LruPolicy.select_victim(&[]), None);
    }

    #[test]
    fn lfu_picks_the_least_launched_with_recency_tie_break() {
        let mut c = [
            resident("hot", 10, 1),
            resident("interloper", 10, 9),
            resident("warm", 10, 5),
        ];
        c[0].launches = 40;
        c[1].launches = 1;
        c[2].launches = 12;
        // LRU would sacrifice the oldest (hot!) program; LFU spots the
        // one-off.
        assert_eq!(LruPolicy.select_victim(&c), Some("hot"));
        assert_eq!(LfuPolicy.select_victim(&c), Some("interloper"));
        // Equal frequencies degrade to LRU.
        let uniform = [resident("a", 10, 3), resident("b", 10, 1)];
        assert_eq!(LfuPolicy.select_victim(&uniform), Some("b"));
        assert_eq!(LfuPolicy.select_victim(&[]), None);
    }

    #[test]
    fn never_evict_always_refuses() {
        let c = [resident("a", 10, 5)];
        assert_eq!(NeverEvict.select_victim(&c), None);
    }

    #[test]
    fn size_aware_prefers_one_large_coldish_over_small_older_ones() {
        // The small program is the LRU victim, but the large program two
        // ticks younger frees six times the words: one eviction instead of
        // a cascade.
        let c = [
            resident("small-old", 10, 1),
            resident("large-mid", 60, 2),
            resident("small-hot", 10, 3),
        ];
        assert_eq!(LruPolicy.select_victim(&c), Some("small-old"));
        assert_eq!(SizeAwareLru.select_victim(&c), Some("large-mid"));
    }

    #[test]
    fn size_aware_degrades_to_lru_for_uniform_sizes() {
        let c = [
            resident("a", 20, 3),
            resident("b", 20, 1),
            resident("c", 20, 2),
        ];
        assert_eq!(SizeAwareLru.select_victim(&c), Some("b"));
        assert_eq!(SizeAwareLru.select_victim(&[]), None);
    }

    #[test]
    fn size_aware_keeps_a_genuinely_hot_large_program() {
        // A large program used just now only loses to the small old one if
        // the size advantage cannot offset the recency gap.
        let c = [resident("small-old", 30, 1), resident("large-hot", 35, 9)];
        // small-old: 30 * 2 = 60; large-hot: 35 * 1 = 35.
        assert_eq!(SizeAwareLru.select_victim(&c), Some("small-old"));
    }
}
