//! Eviction policies for the configuration-memory residency manager.
//!
//! When a [`crate::Session`] must load a program that does not fit the
//! remaining configuration memory, it consults its [`EvictionPolicy`] to
//! pick resident *victims* to unload, one at a time, until the new program
//! fits.  The policy only ever sees evictable candidates — programs pinned
//! by the active invocation are withheld by the session, and programs
//! staged by [`crate::Session::prefetch`] but not yet launched are
//! withheld until no other resident can make room — and must be
//! deterministic so capacity experiments are reproducible.
//!
//! Five policies ship with the runtime:
//!
//! * [`LruPolicy`] (default) — evict the least recently loaded-or-launched
//!   program, regardless of size.
//! * [`LfuPolicy`] — evict the least *frequently* launched program
//!   (recency breaks ties), so a long-lived hot working set survives
//!   one-off interlopers that LRU would keep just for being recent.
//! * [`SizeAwareLru`] — weigh a program's size against its recency, so one
//!   large cold-ish program is evicted instead of several small warm-ish
//!   ones.  A single eviction then frees enough room, and the small hot
//!   programs keep their residency (fewer cold reloads downstream).
//! * [`ArcPolicy`] — adaptive replacement: balances a recency side
//!   (programs launched at most once since load) against a frequency side
//!   (programs launched repeatedly), and *re-tunes* that balance from
//!   ghost hits — reloads of recently evicted programs — so the policy
//!   tracks a shifting mix instead of betting on one signal forever.
//! * [`NeverEvict`] — refuse, restoring the hard
//!   [`vwr2a_core::CoreError::ConfigMemoryFull`] failure.
//!
//! The `residency` bench binary compares the policies on a mixed-size
//! working set and on a phase-change workload where any static policy
//! loses one of the phases.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Snapshot of one resident program handed to an [`EvictionPolicy`] when
/// the session must free configuration-memory words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidentProgram<'a> {
    /// The program's [`crate::Kernel::cache_key`].
    pub key: &'a str,
    /// Configuration words the program occupies.
    pub words: usize,
    /// Launches since the program was (last) loaded.
    pub launches: u64,
    /// Session-wide logical time of the program's last load or launch
    /// (higher = more recent; values are unique within a session).
    pub last_use: u64,
}

/// Chooses which resident program to evict when a new program does not fit
/// the configuration memory.
///
/// The session calls [`EvictionPolicy::select_victim`] only with programs
/// that are *evictable* — programs pinned by the active
/// [`crate::LaunchCtx`] (the invocation's primary program and every
/// auxiliary program it already touched) are never offered.  Returning
/// `None` makes the load fail with
/// [`vwr2a_core::CoreError::ConfigMemoryFull`]; see [`NeverEvict`].
pub trait EvictionPolicy: fmt::Debug + Send {
    /// Returns the cache key of the program to evict, or `None` to refuse.
    ///
    /// Called repeatedly until the pending program fits, so a policy only
    /// ever picks one victim at a time.
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str>;

    /// Observation hook: the session is loading `key` into configuration
    /// memory (cold load or prefetch stage).  Adaptive policies use this
    /// to detect *ghost hits* — reloads of programs they recently chose to
    /// evict; the static policies ignore it.
    fn note_load(&self, key: &str) {
        let _ = key;
    }

    /// Observation hook: a new invocation (or prefetch) asked for `key`
    /// while its program was already resident — the program was *reused*
    /// after the invocation that loaded it.  Fired once per invocation
    /// regardless of how many launches the invocation issues, so adaptive
    /// policies can classify residents by reuse where raw launch counts
    /// would conflate one multi-launch invocation with many invocations.
    /// The static policies ignore it.
    fn note_use(&self, key: &str) {
        let _ = key;
    }

    /// Observation hook: the session unloaded `key` (which had `launches`
    /// launches since its last load) on this policy's advice.  Adaptive
    /// policies record the victim as a ghost; the static policies ignore
    /// it.
    fn note_eviction(&self, key: &str, launches: u64) {
        let _ = (key, launches);
    }
}

/// The default policy: evict the program least recently loaded or
/// launched.  Deterministic, because the session's logical clock gives
/// every resident program a unique `last_use`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LruPolicy;

impl EvictionPolicy for LruPolicy {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        candidates.iter().min_by_key(|c| c.last_use).map(|c| c.key)
    }
}

/// Frequency-aware eviction: evict the program with the fewest launches
/// since it was (last) loaded, breaking ties toward the least recently
/// used.
///
/// LRU protects whatever ran *last*; LFU protects whatever runs *often*.
/// In a streaming workload where a stable set of hot kernels is
/// occasionally interrupted by one-off programs (a calibration pass, a
/// rare event handler), LRU ranks the interloper above the oldest hot
/// program — and evicts a program that is about to be used again.  LFU
/// sees the interloper's single launch and sacrifices it instead, keeping
/// the hot set resident.  The flip side is the classic LFU weakness: a
/// formerly hot program keeps its launch count after the workload shifts,
/// so stale-but-once-popular programs outlive their usefulness (the
/// recency tie-break only softens this).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LfuPolicy;

impl EvictionPolicy for LfuPolicy {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        candidates
            .iter()
            .min_by_key(|c| (c.launches, c.last_use))
            .map(|c| c.key)
    }
}

/// A policy that never evicts: a full configuration memory fails with
/// [`vwr2a_core::CoreError::ConfigMemoryFull`], matching the pre-residency
/// behaviour.  Useful for experiments that want capacity misses to be loud.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeverEvict;

impl EvictionPolicy for NeverEvict {
    fn select_victim<'a>(&self, _candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        None
    }
}

/// Size-aware LRU: evicts the program with the highest
/// `words × age-rank` score, where the age rank counts up from the most
/// recently used candidate (1) to the least recently used (N).
///
/// Pure LRU frees room strictly by age: when the incoming program is
/// large, that can mean unloading *several* small programs that were about
/// to be used again.  Weighing size against recency makes the session
/// prefer evicting **one large, coldish program** over a run of small,
/// warmer ones — a single eviction frees enough words and the small hot
/// working set keeps its residency.  Among equally sized candidates the
/// policy degrades to plain LRU (the older program wins on age rank), so
/// uniform working sets behave exactly like [`LruPolicy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SizeAwareLru;

impl EvictionPolicy for SizeAwareLru {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        // Age rank: most recent gets 1, oldest gets candidates.len().
        let mut by_recency: Vec<&ResidentProgram<'a>> = candidates.iter().collect();
        by_recency.sort_by_key(|c| std::cmp::Reverse(c.last_use));
        by_recency
            .iter()
            .enumerate()
            .max_by_key(|(rank, c)| {
                (
                    c.words as u64 * (*rank as u64 + 1),
                    std::cmp::Reverse(c.last_use),
                )
            })
            .map(|(_, c)| c.key)
    }
}

/// Ghost entries [`ArcPolicy`] remembers per side, and the clamp on its
/// adaptive recency target.  Sized to comfortably cover the handful of
/// programs a VWR2A configuration memory holds (the paper geometry fits
/// tens of kernels, constrained bench geometries far fewer).
const ARC_GHOST_CAPACITY: usize = 32;

/// The adaptive state behind [`ArcPolicy`], guarded by a mutex because
/// [`EvictionPolicy`] methods take `&self`.
#[derive(Debug, Default)]
struct ArcState {
    /// The adaptive balance `p`: how many *recency-side* residents the
    /// policy aims to protect.  `0` means "sacrifice seen-once programs
    /// first" (pure frequency bias); larger values shift evictions onto
    /// the frequency side.
    recency_target: u64,
    /// Ghosts of evicted recency-side programs (never reused after their
    /// loading invocation), oldest first.  A reload of one of these means
    /// the recency side was squeezed too hard.
    ghost_recency: VecDeque<String>,
    /// Ghosts of evicted frequency-side programs (reused at least once
    /// since load), oldest first.
    ghost_frequency: VecDeque<String>,
    /// Residents observed *reused* since their load
    /// ([`EvictionPolicy::note_use`]) — the frequency side.  Keyed on the
    /// session's per-invocation reuse signal rather than raw launch
    /// counts, because one invocation may issue several launches (FIR
    /// kernels launch twice) and would otherwise promote itself.
    reused: HashSet<String>,
}

impl ArcState {
    fn forget(&mut self, key: &str) {
        self.ghost_recency.retain(|g| g != key);
        self.ghost_frequency.retain(|g| g != key);
    }
}

/// ARC-style adaptive replacement: recency and frequency balanced by
/// observed ghost hits.
///
/// Residents are split by the session's reuse signal
/// ([`EvictionPolicy::note_use`]): programs never asked for again after the
/// invocation that loaded them form the **recency side** (they are only as
/// valuable as they are fresh), programs a later invocation came back for
/// form the **frequency side** (their history argues they will run again).
/// The split deliberately ignores raw launch counts — one invocation may
/// issue several launches without proving any reuse.  An adaptive target
/// `p` decides which side pays the next eviction: while the recency side
/// holds more than `p` programs its LRU member is sacrificed, otherwise
/// the frequency side's.
///
/// Each evicted key is remembered as a *ghost*.  When a load
/// ([`EvictionPolicy::note_load`]) hits a recency-side ghost, evicting
/// fresh programs was a mistake — `p` grows, shielding the recency side;
/// a frequency-side ghost hit shrinks `p` again.  Under a stable mix the
/// policy settles near the better static policy; across a **phase change**
/// (scan-heavy traffic turning into hot-set traffic, or back) it re-tunes
/// within a few ghost hits, where [`LruPolicy`] and [`LfuPolicy`] each
/// keep losing one of the phases — the `residency` bench's phase-change
/// table measures exactly this.
///
/// Within the side that pays, candidates are ranked by the same
/// size-weighted age rank as [`SizeAwareLru`], so one large coldish
/// eviction is preferred over a cascade through small warm programs;
/// uniform footprints degrade to plain LRU order.  Like every
/// [`EvictionPolicy`], selection is deterministic (the session's logical
/// clock makes `last_use` unique) and picks one victim per call.
#[derive(Debug, Default)]
pub struct ArcPolicy {
    state: Mutex<ArcState>,
}

impl ArcPolicy {
    /// A fresh policy: balance fully on the frequency side (`p = 0`, evict
    /// seen-once programs first), no ghosts.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current adaptive balance `p`: how many recency-side residents
    /// the policy protects before sacrificing the frequency side.  Starts
    /// at `0`; grows on recency-ghost hits, shrinks on frequency-ghost
    /// hits.  Exposed for benches and tests.
    pub fn recency_target(&self) -> u64 {
        self.lock().recency_target
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArcState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl EvictionPolicy for ArcPolicy {
    fn select_victim<'a>(&self, candidates: &[ResidentProgram<'a>]) -> Option<&'a str> {
        let state = self.lock();
        // Within a side, age rank is weighted by footprint exactly like
        // [`SizeAwareLru`]: one large coldish eviction frees more room
        // than a cascade through small warm programs, and uniform sizes
        // degrade to plain LRU order.
        let pick = |side: Option<bool>| {
            let mut members: Vec<&ResidentProgram<'a>> = candidates
                .iter()
                .filter(|c| side.is_none_or(|freq| state.reused.contains(c.key) == freq))
                .collect();
            members.sort_by_key(|c| std::cmp::Reverse(c.last_use));
            members
                .iter()
                .enumerate()
                .max_by_key(|(rank, c)| {
                    (
                        c.words as u64 * (*rank as u64 + 1),
                        std::cmp::Reverse(c.last_use),
                    )
                })
                .map(|(_, c)| c.key)
        };
        let recency_size = candidates
            .iter()
            .filter(|c| !state.reused.contains(c.key))
            .count() as u64;
        // The recency side pays while it exceeds its protected share `p`;
        // otherwise the frequency side's oldest (size-weighted) member goes.
        let victim = if recency_size > state.recency_target {
            pick(Some(false))
        } else {
            pick(Some(true))
        };
        // The chosen side may be empty: fall back to ranking every
        // candidate rather than refusing (refusal is NeverEvict's job).
        victim.or_else(|| pick(None))
    }

    fn note_load(&self, key: &str) {
        let mut state = self.lock();
        // A (re)load starts the program on the recency side: it has yet to
        // prove reuse in its new residency.
        state.reused.remove(key);
        let recency_ghosts = state.ghost_recency.len() as u64;
        let frequency_ghosts = state.ghost_frequency.len() as u64;
        if state.ghost_recency.iter().any(|g| g == key) {
            // A seen-once program we evicted came straight back: protect
            // the recency side harder, stepping faster when its ghost list
            // is the smaller one (the classic ARC ratio rule).
            let delta = (frequency_ghosts / recency_ghosts.max(1)).max(1);
            state.recency_target = state
                .recency_target
                .saturating_add(delta)
                .min(ARC_GHOST_CAPACITY as u64);
            state.forget(key);
            // A ghost hit is itself proof of reuse: the program survived
            // its own eviction in the workload.  Like ARC moving B1/B2
            // hits straight into T2, it re-enters on the frequency side.
            state.reused.insert(key.to_string());
        } else if state.ghost_frequency.iter().any(|g| g == key) {
            let delta = (recency_ghosts / frequency_ghosts.max(1)).max(1);
            state.recency_target = state.recency_target.saturating_sub(delta);
            state.forget(key);
            state.reused.insert(key.to_string());
        }
    }

    fn note_use(&self, key: &str) {
        let mut state = self.lock();
        state.reused.insert(key.to_string());
    }

    fn note_eviction(&self, key: &str, launches: u64) {
        let _ = launches;
        let mut state = self.lock();
        state.forget(key);
        // The reuse signal, not the launch count, decides which ghost list
        // remembers the victim (and the entry is retired with it).
        let side = if state.reused.remove(key) {
            &mut state.ghost_frequency
        } else {
            &mut state.ghost_recency
        };
        side.push_back(key.to_string());
        if side.len() > ARC_GHOST_CAPACITY {
            side.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resident(key: &str, words: usize, last_use: u64) -> ResidentProgram<'_> {
        ResidentProgram {
            key,
            words,
            launches: 1,
            last_use,
        }
    }

    #[test]
    fn lru_picks_the_oldest() {
        let c = [
            resident("a", 10, 5),
            resident("b", 99, 2),
            resident("c", 1, 9),
        ];
        assert_eq!(LruPolicy.select_victim(&c), Some("b"));
        assert_eq!(LruPolicy.select_victim(&[]), None);
    }

    #[test]
    fn lfu_picks_the_least_launched_with_recency_tie_break() {
        let mut c = [
            resident("hot", 10, 1),
            resident("interloper", 10, 9),
            resident("warm", 10, 5),
        ];
        c[0].launches = 40;
        c[1].launches = 1;
        c[2].launches = 12;
        // LRU would sacrifice the oldest (hot!) program; LFU spots the
        // one-off.
        assert_eq!(LruPolicy.select_victim(&c), Some("hot"));
        assert_eq!(LfuPolicy.select_victim(&c), Some("interloper"));
        // Equal frequencies degrade to LRU.
        let uniform = [resident("a", 10, 3), resident("b", 10, 1)];
        assert_eq!(LfuPolicy.select_victim(&uniform), Some("b"));
        assert_eq!(LfuPolicy.select_victim(&[]), None);
    }

    #[test]
    fn never_evict_always_refuses() {
        let c = [resident("a", 10, 5)];
        assert_eq!(NeverEvict.select_victim(&c), None);
    }

    #[test]
    fn size_aware_prefers_one_large_coldish_over_small_older_ones() {
        // The small program is the LRU victim, but the large program two
        // ticks younger frees six times the words: one eviction instead of
        // a cascade.
        let c = [
            resident("small-old", 10, 1),
            resident("large-mid", 60, 2),
            resident("small-hot", 10, 3),
        ];
        assert_eq!(LruPolicy.select_victim(&c), Some("small-old"));
        assert_eq!(SizeAwareLru.select_victim(&c), Some("large-mid"));
    }

    #[test]
    fn size_aware_degrades_to_lru_for_uniform_sizes() {
        let c = [
            resident("a", 20, 3),
            resident("b", 20, 1),
            resident("c", 20, 2),
        ];
        assert_eq!(SizeAwareLru.select_victim(&c), Some("b"));
        assert_eq!(SizeAwareLru.select_victim(&[]), None);
    }

    #[test]
    fn size_aware_keeps_a_genuinely_hot_large_program() {
        // A large program used just now only loses to the small old one if
        // the size advantage cannot offset the recency gap.
        let c = [resident("small-old", 30, 1), resident("large-hot", 35, 9)];
        // small-old: 30 * 2 = 60; large-hot: 35 * 1 = 35.
        assert_eq!(SizeAwareLru.select_victim(&c), Some("small-old"));
    }

    fn frequent(key: &str, launches: u64, last_use: u64) -> ResidentProgram<'_> {
        ResidentProgram {
            key,
            words: 10,
            launches,
            last_use,
        }
    }

    #[test]
    fn arc_starts_by_sacrificing_seen_once_programs() {
        let arc = ArcPolicy::new();
        assert_eq!(arc.recency_target(), 0);
        // "hot" proved reuse; the scans were loaded once and never asked
        // for again.  With p = 0 the recency side always exceeds its
        // protected share, so its LRU member goes — not the old hot one.
        for key in ["hot", "scan-a", "scan-b"] {
            arc.note_load(key);
        }
        arc.note_use("hot");
        let c = [
            frequent("hot", 9, 1),
            frequent("scan-a", 1, 5),
            frequent("scan-b", 1, 7),
        ];
        assert_eq!(arc.select_victim(&c), Some("scan-a"));
    }

    #[test]
    fn arc_classifies_by_reuse_not_launch_count() {
        // One invocation that issues several launches (a FIR invocation
        // launches twice) proves nothing: the program stays on the recency
        // side until a *later* invocation comes back for it.
        let arc = ArcPolicy::new();
        arc.note_load("fir");
        arc.note_load("hot");
        arc.note_use("hot");
        let c = [frequent("fir", 2, 9), frequent("hot", 2, 1)];
        assert_eq!(arc.select_victim(&c), Some("fir"));
        // Once genuinely reused it joins the frequency side and survives.
        arc.note_use("fir");
        arc.note_load("scan");
        let c = [
            frequent("fir", 4, 9),
            frequent("hot", 2, 1),
            frequent("scan", 2, 5),
        ];
        assert_eq!(arc.select_victim(&c), Some("scan"));
    }

    #[test]
    fn arc_ghost_hits_adapt_the_balance_both_ways() {
        let arc = ArcPolicy::new();
        // Evicting a never-reused program that comes straight back is a
        // recency-ghost hit: the protected share grows, and the returning
        // program re-enters on the frequency side (it just proved reuse).
        arc.note_load("scan-a");
        arc.note_eviction("scan-a", 1);
        arc.note_load("scan-a");
        assert_eq!(arc.recency_target(), 1);
        // With p = 1 a lone fresh program is protected, so the frequency
        // side pays instead (its LRU member, the warm program).
        arc.note_load("hot");
        arc.note_use("hot");
        arc.note_load("warm");
        arc.note_use("warm");
        arc.note_load("fresh");
        let c = [
            frequent("hot", 9, 8),
            frequent("fresh", 1, 5),
            frequent("warm", 3, 2),
        ];
        assert_eq!(arc.select_victim(&c), Some("warm"));
        // Evicting the reused program files a frequency ghost; its reload
        // is a frequency-ghost hit and pulls the balance back...
        arc.note_eviction("warm", 3);
        arc.note_load("warm");
        assert_eq!(arc.recency_target(), 0);
        // ...so the fresh never-reused program pays again.
        assert_eq!(arc.select_victim(&c), Some("fresh"));
        // A load that hits no ghost moves nothing.
        arc.note_load("never-seen");
        assert_eq!(arc.recency_target(), 0);
    }

    #[test]
    fn arc_ghost_hits_are_consumed_and_ghost_lists_are_bounded() {
        let arc = ArcPolicy::new();
        arc.note_eviction("scan", 1);
        arc.note_load("scan");
        arc.note_load("scan"); // second load: the ghost is gone
        assert_eq!(arc.recency_target(), 1);
        // Overflow the recency ghost list: the oldest ghost is forgotten,
        // so its reload no longer adapts anything.
        let arc = ArcPolicy::new();
        arc.note_eviction("oldest", 1);
        for i in 0..ARC_GHOST_CAPACITY {
            arc.note_eviction(&format!("g{i}"), 1);
        }
        arc.note_load("oldest");
        assert_eq!(arc.recency_target(), 0);
        // The balance itself is clamped to the ghost capacity.
        let arc = ArcPolicy::new();
        for i in 0..2 * ARC_GHOST_CAPACITY {
            let key = format!("k{i}");
            arc.note_eviction(&key, 1);
            arc.note_load(&key);
        }
        assert_eq!(arc.recency_target(), ARC_GHOST_CAPACITY as u64);
    }

    #[test]
    fn arc_selection_is_deterministic_and_picks_one_candidate() {
        let c = [
            frequent("a", 1, 3),
            frequent("b", 4, 1),
            frequent("c", 1, 2),
            frequent("d", 7, 4),
        ];
        // Two independently built policies fed the same history agree on
        // every call, and each pick is a member of the candidate set.
        let build = || {
            let arc = ArcPolicy::new();
            arc.note_eviction("c", 1);
            arc.note_load("c");
            arc
        };
        let (x, y) = (build(), build());
        for _ in 0..3 {
            let (vx, vy) = (x.select_victim(&c), y.select_victim(&c));
            assert_eq!(vx, vy);
            let victim = vx.expect("candidates are non-empty");
            assert!(c.iter().any(|r| r.key == victim), "{victim} not offered");
        }
        assert_eq!(x.select_victim(&[]), None);
        // Ties on last_use (impossible in a live session, possible in
        // synthetic tests) break deterministically by key.
        let tied = [frequent("z", 1, 5), frequent("m", 1, 5)];
        assert_eq!(x.select_victim(&tied), x.select_victim(&tied));
    }

    #[test]
    fn arc_falls_back_to_plain_lru_when_a_side_is_empty() {
        let arc = ArcPolicy::new();
        // Protect the recency side beyond its size; the frequency side is
        // empty, so plain LRU decides.
        for i in 0..4 {
            let key = format!("p{i}");
            arc.note_eviction(&key, 1);
            arc.note_load(&key);
        }
        let all_once = [frequent("a", 1, 9), frequent("b", 0, 4)];
        assert_eq!(arc.select_victim(&all_once), Some("b"));
    }
}
